#include "net/trace_binary.hpp"

#include <istream>
#include <ostream>

namespace qoesim::net {

namespace {

void store16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void store32(std::uint8_t* out, std::uint32_t v) {
  store16(out, static_cast<std::uint16_t>(v));
  store16(out + 2, static_cast<std::uint16_t>(v >> 16));
}

void store64(std::uint8_t* out, std::uint64_t v) {
  store32(out, static_cast<std::uint32_t>(v));
  store32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t load16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t load32(const std::uint8_t* in) {
  return load16(in) | (static_cast<std::uint32_t>(load16(in + 2)) << 16);
}

std::uint64_t load64(const std::uint8_t* in) {
  return load32(in) | (static_cast<std::uint64_t>(load32(in + 4)) << 32);
}

}  // namespace

std::uint64_t trace_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void encode_record(const Packet& p, Time now, TraceEvent e,
                   std::uint16_t point, std::uint8_t* out) {
  const bool tcp = p.proto == Protocol::kTcp;
  store64(out + 0, static_cast<std::uint64_t>(now.ns()));
  store64(out + 8, p.uid);
  store64(out + 16, p.flow);
  store64(out + 24, tcp ? p.tcp.seq : p.app.seq);
  store64(out + 32, tcp ? p.tcp.ack : 0);
  store32(out + 40, p.src);
  store32(out + 44, p.dst);
  store32(out + 48, tcp ? p.tcp.payload : p.udp.payload);
  store32(out + 52, p.size_bytes);
  store16(out + 56,
          static_cast<std::uint16_t>(tcp ? p.tcp.src_port : p.udp.src_port));
  store16(out + 58,
          static_cast<std::uint16_t>(tcp ? p.tcp.dst_port : p.udp.dst_port));
  store16(out + 60, point);
  out[62] = static_cast<std::uint8_t>(e);
  std::uint8_t meta = tcp ? 0x01 : 0x00;
  meta |= static_cast<std::uint8_t>(static_cast<std::uint8_t>(p.ecn) << 1);
  if (tcp) {
    if (p.tcp.syn) meta |= 0x08;
    if (p.tcp.fin) meta |= 0x10;
    if (p.tcp.has_ack) meta |= 0x20;
    if (p.tcp.ece) meta |= 0x40;
    if (p.tcp.cwr) meta |= 0x80;
  }
  out[63] = meta;
}

BinRecord decode_record(const std::uint8_t* in) {
  BinRecord r;
  r.t_ns = static_cast<std::int64_t>(load64(in + 0));
  r.uid = load64(in + 8);
  r.flow = load64(in + 16);
  r.seq = load64(in + 24);
  r.ack = load64(in + 32);
  r.src = load32(in + 40);
  r.dst = load32(in + 44);
  r.payload = load32(in + 48);
  r.wire_bytes = load32(in + 52);
  r.src_port = load16(in + 56);
  r.dst_port = load16(in + 58);
  r.point = load16(in + 60);
  r.event = static_cast<TraceEvent>(in[62]);
  const std::uint8_t meta = in[63];
  r.proto = (meta & 0x01) ? Protocol::kTcp : Protocol::kUdp;
  r.ecn = static_cast<Ecn>((meta >> 1) & 0x03);
  r.syn = meta & 0x08;
  r.fin = meta & 0x10;
  r.has_ack = meta & 0x20;
  r.ece = meta & 0x40;
  r.cwr = meta & 0x80;
  return r;
}

BinaryTracer::BinaryTracer() : BinaryTracer(Config{}) {}

BinaryTracer::BinaryTracer(Config cfg) : cfg_(cfg) {
  if (cfg_.sample_every == 0) cfg_.sample_every = 1;
  buf_.resize(cfg_.capacity_records * kTraceRecordBytes);
}

void BinaryTracer::observe_link(Link& link, std::uint16_t point) {
  link.add_tx_observer([this, point](const Packet& p, Time now) {
    record(p, now, TraceEvent::kTransmit, point);
  });
  link.add_rx_observer([this, point](const Packet& p, Time now) {
    record(p, now, TraceEvent::kDeliver, point);
  });
}

QOESIM_HOT void BinaryTracer::record(const Packet& p, Time now, TraceEvent e,
                                     std::uint16_t point) {
  if (!trace_sampled(p.uid, cfg_.sample_every)) return;
  if (used_ + kTraceRecordBytes > buf_.size()) {
    ++overflow_;
    return;
  }
  encode_record(p, now, e, point, buf_.data() + used_);
  used_ += kTraceRecordBytes;
}

void BinaryTracer::write_header(std::ostream& out) {
  std::uint8_t header[kTraceHeaderBytes] = {};
  store32(header, kTraceMagic);
  header[4] = kTraceVersion;
  header[5] = static_cast<std::uint8_t>(kTraceRecordBytes);
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
}

void BinaryTracer::write(std::ostream& out) const {
  write_header(out);
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(used_));
}

bool read_trace(std::istream& in, std::vector<BinRecord>* out,
                std::string* error) {
  std::uint8_t header[kTraceHeaderBytes];
  if (!in.read(reinterpret_cast<char*>(header), sizeof(header))) {
    if (error) *error = "trace: short read on header";
    return false;
  }
  if (load32(header) != kTraceMagic) {
    if (error) *error = "trace: bad magic (not a qoesim binary trace)";
    return false;
  }
  if (header[4] != kTraceVersion) {
    if (error) *error = "trace: unsupported version";
    return false;
  }
  if (header[5] != kTraceRecordBytes) {
    if (error) *error = "trace: unexpected record size";
    return false;
  }
  std::uint8_t rec[kTraceRecordBytes];
  while (in.read(reinterpret_cast<char*>(rec), sizeof(rec))) {
    out->push_back(decode_record(rec));
  }
  if (in.gcount() != 0) {
    if (error) *error = "trace: truncated record at end of stream";
    return false;
  }
  return true;
}

}  // namespace qoesim::net
