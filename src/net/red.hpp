// qoesim -- Random Early Detection (Floyd & Jacobson 1993).
//
// Not used by the paper's testbeds (they are drop-tail), but provided for
// the AQM ablation bench: the paper explicitly motivates AQM work (CoDel)
// as a response to bufferbloat, so we quantify what AQM would have changed.
//
// Spec fidelity: the average queue estimate follows eq. 1-3 of the paper,
// including the idle-period decay avg <- (1-w)^m * avg where m counts the
// packet transmission times that would have fit in the idle gap. The
// transmission-time estimate (the paper's `s`) is taken from the attached
// link's rate via set_drain_rate(); standalone instances fall back to
// RedParams::mean_pkt_time.
#pragma once

#include <deque>

#include "core/annotations.hpp"
#include "net/queue.hpp"
#include "sim/random.hpp"

namespace qoesim::net {

struct RedParams {
  double min_th_fraction = 0.25;  ///< min threshold as fraction of capacity
  double max_th_fraction = 0.75;  ///< max threshold as fraction of capacity
  double max_p = 0.1;             ///< drop probability at max threshold
  double weight = 0.002;          ///< EWMA weight for average queue size
  /// Typical transmission time of one packet (the paper's `s`), used to
  /// convert an idle gap into the number of EWMA steps to decay. Replaced
  /// by kMtuBytes at the link rate when the queue is attached to a Link.
  Time mean_pkt_time = Time::milliseconds(1);
};

/// Shard-plane: the per-link RNG stream draws in FIFO arrival order, so a
/// cross-shard enqueue would silently perturb the drop sequence (and with
/// it every figure) long before it corrupted memory. The draw site asserts
/// the shard capability statically; do_enqueue's caller chain (Link::send)
/// carries the dynamic thread check.
class QOESIM_SHARD_PLANE RedQueue final : public QueueDiscipline {
 public:
  explicit RedQueue(std::size_t capacity_packets, RedParams params = {},
                    std::uint64_t seed = kDefaultSeed);

  /// Seed used when no per-scenario seed is plumbed through make_queue.
  static constexpr std::uint64_t kDefaultSeed = kDefaultQueueSeed;

  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }
  std::string name() const override { return "RED"; }

  void set_drain_rate(double bps) override;

  double average_queue() const { return avg_; }

 protected:
  bool do_enqueue(Packet&& p, Time now) override;
  std::optional<Packet> do_dequeue(Time now) override;

 private:
  RedParams params_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
  double avg_ = 0.0;      // EWMA of the instantaneous queue length (packets)
  std::uint64_t count_since_drop_ = 0;
  // Idle tracking for the (1-w)^m decay: the queue starts idle at t=0.
  bool idle_ = true;
  Time idle_since_;
  RandomStream rng_ QOESIM_GUARDED_BY(::qoesim::shard_plane);
};

}  // namespace qoesim::net
