// qoesim -- Random Early Detection (Floyd & Jacobson 1993).
//
// Not used by the paper's testbeds (they are drop-tail), but provided for
// the AQM ablation bench: the paper explicitly motivates AQM work (CoDel)
// as a response to bufferbloat, so we quantify what AQM would have changed.
#pragma once

#include <deque>

#include "net/queue.hpp"
#include "sim/random.hpp"

namespace qoesim::net {

struct RedParams {
  double min_th_fraction = 0.25;  ///< min threshold as fraction of capacity
  double max_th_fraction = 0.75;  ///< max threshold as fraction of capacity
  double max_p = 0.1;             ///< drop probability at max threshold
  double weight = 0.002;          ///< EWMA weight for average queue size
};

class RedQueue final : public QueueDiscipline {
 public:
  explicit RedQueue(std::size_t capacity_packets, RedParams params = {},
                    std::uint64_t seed = 0x52454421ull);

  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }
  std::string name() const override { return "RED"; }

  double average_queue() const { return avg_; }

 protected:
  bool do_enqueue(Packet&& p, Time now) override;
  std::optional<Packet> do_dequeue(Time now) override;

 private:
  RedParams params_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
  double avg_ = 0.0;      // EWMA of the instantaneous queue length (packets)
  std::uint64_t count_since_drop_ = 0;
  RandomStream rng_;
};

}  // namespace qoesim::net
