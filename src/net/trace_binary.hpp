// qoesim -- compact binary per-packet trace.
//
// A BinaryTracer streams fixed-width 64-byte little-endian records into a
// preallocated buffer: time, tap point, TraceEvent, flow 4-tuple,
// seq/ack/len/flags/ECN. The write path is allocation-free in steady state
// (QOESIM_HOT contract), so figure benches can trace the bottleneck at
// full event rate; deterministic 1-in-N packet sampling (by uid hash, so
// all events of one packet sample together) keeps long sweeps cheap.
//
// The on-disk format is a 16-byte header followed by records; the record
// count is derived from the remaining file size, so per-cell trace bodies
// can be concatenated under one header in deterministic sweep order --
// the basis of the CI gate that diffs bench traces across --jobs 1/4.
// Conversion to pcap and a diff-friendly text dump live in
// trace_convert.hpp / tools/trace.
//
// Layout (all little-endian, offsets in bytes):
//    0  i64  t_ns        event time (simulated, ns)
//    8  u64  uid         packet uid
//   16  u64  flow        transport flow id
//   24  u64  seq         TCP sequence (app seq for UDP)
//   32  u64  ack         TCP cumulative ack (0 for UDP)
//   40  u32  src         source node id
//   44  u32  dst         destination node id
//   48  u32  payload     transport payload bytes
//   52  u32  wire        wire size incl. headers
//   56  u16  src_port
//   58  u16  dst_port
//   60  u16  point       tap point id (caller-assigned link id)
//   62  u8   event       TraceEvent
//   63  u8   meta        bit0 proto (1=tcp), bits1-2 ECN codepoint,
//                        bit3 SYN, bit4 FIN, bit5 ACK, bit6 ECE, bit7 CWR
//
// SACK blocks are not part of the fixed record (they would triple its
// size for a field only conformance scripts inspect, and those match on
// live packets, not traces).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/tracer.hpp"
#include "sim/annotations.hpp"

namespace qoesim::net {

inline constexpr std::uint32_t kTraceMagic = 0x43525451u;  // "QTRC" LE
inline constexpr std::uint8_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 16;
inline constexpr std::size_t kTraceRecordBytes = 64;

/// Decoded record (host representation of the wire layout above).
struct BinRecord {
  std::int64_t t_ns = 0;
  std::uint64_t uid = 0;
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t payload = 0;
  std::uint32_t wire_bytes = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t point = 0;
  TraceEvent event = TraceEvent::kTransmit;
  Protocol proto = Protocol::kUdp;
  Ecn ecn = Ecn::kNotEct;
  bool syn = false;
  bool fin = false;
  bool has_ack = false;
  bool ece = false;
  bool cwr = false;
};

/// SplitMix64 finalizer; the sampling hash (and usable as a test PRNG).
std::uint64_t trace_mix64(std::uint64_t x);

/// Deterministic packet sampling: keep uid iff hash(uid) % every == 0.
inline bool trace_sampled(std::uint64_t uid, std::uint32_t every) {
  return every <= 1 || trace_mix64(uid) % every == 0;
}

/// Encode one record at `out` (exactly kTraceRecordBytes bytes).
void encode_record(const Packet& p, Time now, TraceEvent e,
                   std::uint16_t point, std::uint8_t* out);
/// Decode one record from `in` (exactly kTraceRecordBytes bytes).
BinRecord decode_record(const std::uint8_t* in);

class BinaryTracer {
 public:
  struct Config {
    /// Maximum records kept; further writes only bump overflow().
    std::size_t capacity_records = 1 << 20;
    /// Keep 1 in N packets (1 = every packet); all events of a sampled
    /// packet are kept so per-packet timelines stay complete.
    std::uint32_t sample_every = 1;
  };

  BinaryTracer();  // default Config
  explicit BinaryTracer(Config cfg);

  /// Record transmit and deliver events on `link`, tagged with `point`.
  void observe_link(Link& link, std::uint16_t point);

  /// Append one record (allocation-free; drops + counts when full).
  void record(const Packet& p, Time now, TraceEvent e, std::uint16_t point);

  std::size_t records() const { return used_ / kTraceRecordBytes; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint32_t sample_every() const { return cfg_.sample_every; }

  /// The encoded record bytes (no header) -- concatenable across tracers.
  const std::uint8_t* data() const { return buf_.data(); }
  std::size_t size_bytes() const { return used_; }

  /// Write header + records.
  void write(std::ostream& out) const;
  /// Write just the 16-byte file header (for callers that concatenate
  /// bodies from several tracers themselves).
  static void write_header(std::ostream& out);

 private:
  Config cfg_;
  std::vector<std::uint8_t> buf_;
  std::size_t used_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Parse a trace stream (header + records). Returns false and sets
/// `error` on malformed input; a truncated trailing record is an error.
bool read_trace(std::istream& in, std::vector<BinRecord>* out,
                std::string* error);

}  // namespace qoesim::net
