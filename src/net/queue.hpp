// qoesim -- queue discipline interface.
//
// A QueueDiscipline sits in front of a link transmitter; it decides, per
// packet, whether to admit, drop, or (for AQM schemes) mark-by-drop. All
// disciplines share a stats block so the experiment harness can read loss
// rates uniformly. The paper's testbeds use drop-tail buffers sized in
// packets; RED and CoDel are provided for the AQM ablation benchmark.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace qoesim::net {

struct QueueStats {
  std::uint64_t offered = 0;         ///< enqueue attempts
  std::uint64_t enqueued = 0;        ///< accepted packets
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;         ///< tail drops + AQM drops
  std::uint64_t marked = 0;          ///< CE marks applied instead of drops
  std::uint64_t bytes_offered = 0;
  std::uint64_t bytes_dropped = 0;
  std::uint64_t max_packets_seen = 0;

  double drop_rate() const {
    return offered ? static_cast<double>(dropped) / static_cast<double>(offered)
                   : 0.0;
  }
  double mark_rate() const {
    return offered ? static_cast<double>(marked) / static_cast<double>(offered)
                   : 0.0;
  }
};

class QueueDiscipline {
 public:
  explicit QueueDiscipline(std::size_t capacity_packets)
      : capacity_(capacity_packets) {}
  virtual ~QueueDiscipline() = default;

  QueueDiscipline(const QueueDiscipline&) = delete;
  QueueDiscipline& operator=(const QueueDiscipline&) = delete;

  /// Offer a packet at time `now`. Returns true if admitted. On admission
  /// the packet's `enqueued_at` is stamped for delay accounting.
  bool enqueue(Packet&& p, Time now);

  /// Remove the next packet to transmit, or nullopt if empty. AQM schemes
  /// may silently drop head packets here (counted in stats).
  std::optional<Packet> dequeue(Time now);

  virtual std::size_t packet_count() const = 0;
  virtual std::size_t byte_count() const = 0;
  bool empty() const { return packet_count() == 0; }

  /// Called by the Link this discipline is attached to with the drain rate
  /// of its transmitter. Disciplines that convert times to packet counts
  /// (RED's idle decay) use it; others ignore it.
  virtual void set_drain_rate(double /*bps*/) {}

  /// Enable ECN: AQM schemes (RED, CoDel) CE-mark ECT packets where they
  /// would otherwise early-drop (RFC 3168 §5 / RFC 8289 §4.2). Hard tail
  /// drops of a full buffer still drop, and Not-ECT packets are always
  /// dropped. Disciplines without an early-drop decision ignore the flag.
  virtual void set_ecn_marking(bool on) { ecn_marking_ = on; }
  bool ecn_marking() const { return ecn_marking_; }

  std::size_t capacity_packets() const { return capacity_; }
  const QueueStats& stats() const { return stats_; }
  virtual std::string name() const = 0;

 protected:
  /// Admission decision + storage; return true if stored.
  virtual bool do_enqueue(Packet&& p, Time now) = 0;
  virtual std::optional<Packet> do_dequeue(Time now) = 0;

  void count_drop(const Packet& p) {
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes;
  }

  /// True when this packet may be CE-marked instead of dropped.
  bool can_mark(const Packet& p) const {
    return ecn_marking_ && is_ect(p.ecn);
  }

  /// Apply a CE mark in place of a drop (caller keeps/delivers the packet).
  void apply_mark(Packet& p) {
    p.ecn = Ecn::kCe;
    ++stats_.marked;
  }

  std::size_t capacity_;
  QueueStats stats_;
  bool ecn_marking_ = false;
};

/// Which discipline to instantiate (scenario configuration).
enum class QueueKind { kDropTail, kRed, kCoDel, kPriority };

/// Seed for randomized disciplines when no per-scenario seed is plumbed
/// through make_queue (RedQueue::kDefaultSeed aliases it).
inline constexpr std::uint64_t kDefaultQueueSeed = 0x52454421ull;

/// Instantiate a discipline. `seed` feeds the randomized schemes (RED's
/// drop lottery); callers building per-scenario topologies should derive
/// it from the scenario seed (Topology does) so sweep cells do not share
/// one drop sequence. The default keeps seedless call sites reproducible.
std::unique_ptr<QueueDiscipline> make_queue(
    QueueKind kind, std::size_t capacity_packets,
    std::uint64_t seed = kDefaultQueueSeed);

const char* to_string(QueueKind kind);

}  // namespace qoesim::net
