#include "net/node.hpp"

#include "sim/annotations.hpp"

#include <stdexcept>

namespace qoesim::net {

namespace {

std::uint8_t proto_byte(Protocol proto) {
  return static_cast<std::uint8_t>(proto);
}

}  // namespace

void Node::StatsFold::fold(const Stats& s) {
  const MutexLock lock(mutex_);
  total_ += s;
}

Node::Stats Node::StatsFold::snapshot() const {
  const MutexLock lock(mutex_);
  return total_;
}

Node::~Node() {
  // Drop the arena's socket refs first so teardown closes count into the
  // folded stats (and bound sockets die even though their demux handlers
  // are never individually unbound).
  flows_.release_all();
  if (stats_fold_ != nullptr) stats_fold_->fold(stats());
}

Node::Stats Node::stats() const {
  Stats s = stats_;
  s.demux_rehashes = demux_.rehashes();
  const core::FlowArena::Stats& f = flows_.stats();
  s.flows_opened = f.flows_opened;
  s.flows_closed = f.flows_closed;
  s.flow_peak_live = f.peak_live;
  s.flow_hot_bytes = f.slot_bytes;
  s.flow_cold_allocs = f.cold_allocs;
  s.flow_cold_frees = f.cold_frees;
  s.flow_cold_peak_live = f.cold_peak_live;
  s.flow_cold_bytes = f.cold_slot_bytes;
  return s;
}

std::size_t Node::add_port(Link* out) {
  if (out == nullptr) throw std::invalid_argument("Node::add_port: null link");
  ports_.push_back(out);
  return ports_.size() - 1;
}

void Node::set_next_hop(NodeId dst, std::size_t port) {
  if (port >= ports_.size()) {
    throw std::out_of_range("Node::set_next_hop: bad port");
  }
  if (dst >= routes_.size()) routes_.resize(dst + 1, -1);
  routes_[dst] = static_cast<std::int32_t>(port);
}

void Node::set_default_route(std::size_t port) {
  if (port >= ports_.size()) {
    throw std::out_of_range("Node::set_default_route: bad port");
  }
  default_route_ = static_cast<std::ptrdiff_t>(port);
}

QOESIM_HOT void Node::receive(Packet&& p) {
  sim_.shard().assert_held();
  if (p.dst == id_) {
    deliver_local(std::move(p));
  } else {
    send(std::move(p));  // forward
  }
}

QOESIM_HOT void Node::send(Packet&& p) {
  sim_.shard().assert_held();
  std::ptrdiff_t port =
      p.dst < routes_.size() ? routes_[p.dst] : std::ptrdiff_t{-1};
  if (port < 0) port = default_route_;
  if (port < 0) {
    ++stats_.unrouted;
    return;
  }
  ports_[static_cast<std::size_t>(port)]->send(std::move(p));
}

QOESIM_HOT void Node::deliver_local(Packet&& p) {
  const std::uint8_t proto = proto_byte(p.proto);
  std::uint32_t local_port, remote_port;
  if (p.proto == Protocol::kTcp) {
    local_port = p.tcp.dst_port;
    remote_port = p.tcp.src_port;
  } else {
    local_port = p.udp.dst_port;
    remote_port = p.udp.src_port;
  }
  auto* slot = demux_.find(DemuxKey::pack(proto, local_port, p.src, remote_port));
  if (slot == nullptr) slot = demux_.find(DemuxKey::wildcard(proto, local_port));
  if (slot == nullptr || !slot->value) {
    // Sockets unbind as soon as they close or abort, so a retransmission
    // racing the teardown can still arrive afterwards -- a resent FIN
    // after our final ACK was dropped, or a SYN-ACK retransmitted into a
    // client that already gave up connecting. Only a pure SYN (a fresh
    // connection attempt) or a UDP datagram signals a real blackhole;
    // see Stats::stray_late.
    if (p.proto == Protocol::kTcp && (p.tcp.has_ack || p.tcp.fin)) {
      ++stats_.stray_late;
    } else {
      ++stats_.undelivered;
    }
    return;
  }
  ++stats_.delivered;
  // Move the handler out for the duration of the call: the handler may
  // unbind itself (its captures must outlive the call even though the
  // table entry dies), and any bind/unbind it performs may relocate slots
  // (growth rehash, backward shift). Afterwards the generation stamp
  // decides the handler's fate: unchanged -> the binding is still this
  // handler, move it back; changed or gone -> the handler unbound or
  // replaced itself, so the moved-out copy is dropped (destroying the
  // captures only after the call returned). Both paths are allocation-free
  // (SmallFunction moves relocate inline captures).
  const DemuxKey key = slot->key;
  const std::uint64_t gen = slot->gen;
  Handler h = std::move(slot->value);
  h(std::move(p));
  if (auto* back = demux_.find(key); back != nullptr && back->gen == gen) {
    back->value = std::move(h);
  }
}

std::uint64_t Node::bind_connection(Protocol proto, std::uint32_t local_port,
                                    NodeId remote, std::uint32_t remote_port,
                                    Handler h) {
  sim_.shard().assert_held();
  ++stats_.binds;
  const auto [gen, inserted] = demux_.bind(
      DemuxKey::pack(proto_byte(proto), local_port, remote, remote_port),
      std::move(h));
  if (inserted) note_bound(local_port);
  return gen;
}

void Node::unbind_connection(Protocol proto, std::uint32_t local_port,
                             NodeId remote, std::uint32_t remote_port) {
  sim_.shard().assert_held();
  if (demux_.erase(DemuxKey::pack(proto_byte(proto), local_port, remote,
                                  remote_port))) {
    ++stats_.unbinds;
    note_unbound(local_port);
  }
}

void Node::unbind_connection(Protocol proto, std::uint32_t local_port,
                             NodeId remote, std::uint32_t remote_port,
                             std::uint64_t expected_gen) {
  sim_.shard().assert_held();
  if (demux_.erase_if_gen(DemuxKey::pack(proto_byte(proto), local_port, remote,
                                         remote_port),
                          expected_gen)) {
    ++stats_.unbinds;
    note_unbound(local_port);
  }
}

void Node::bind_listener(Protocol proto, std::uint32_t local_port, Handler h) {
  sim_.shard().assert_held();
  ++stats_.binds;
  const auto [gen, inserted] =
      demux_.bind(DemuxKey::wildcard(proto_byte(proto), local_port),
                  std::move(h));
  (void)gen;
  if (inserted) note_bound(local_port);
}

void Node::unbind_listener(Protocol proto, std::uint32_t local_port) {
  sim_.shard().assert_held();
  if (demux_.erase(DemuxKey::wildcard(proto_byte(proto), local_port))) {
    ++stats_.unbinds;
    note_unbound(local_port);
  }
}

void Node::note_bound(std::uint32_t local_port) {
  if (local_port < kEphemeralLo || local_port > kEphemeralHi) return;
  if (ephemeral_use_.empty()) {
    ephemeral_use_.resize(kEphemeralHi - kEphemeralLo + 1, 0);
  }
  ++ephemeral_use_[local_port - kEphemeralLo];
}

void Node::note_unbound(std::uint32_t local_port) {
  if (local_port < kEphemeralLo || local_port > kEphemeralHi) return;
  if (!ephemeral_use_.empty()) --ephemeral_use_[local_port - kEphemeralLo];
}

bool Node::port_in_use(std::uint32_t port) const {
  return !ephemeral_use_.empty() && ephemeral_use_[port - kEphemeralLo] != 0;
}

std::uint32_t Node::allocate_port() {
  // Same sequence the pre-wraparound allocator produced (49152, 49153, ...)
  // until the range is exhausted; after wrapping, ports still bound to a
  // live connection or listener are skipped (long Harpoon sweeps exceed
  // 16k flows per node, so the raw counter used to walk out of the
  // ephemeral range and collide with reused ports).
  for (std::uint32_t tries = 0; tries <= kEphemeralHi - kEphemeralLo;
       ++tries) {
    const std::uint32_t port = next_ephemeral_;
    next_ephemeral_ = port == kEphemeralHi ? kEphemeralLo : port + 1;
    if (!port_in_use(port)) return port;
  }
  throw std::runtime_error("Node::allocate_port: ephemeral range exhausted");
}

}  // namespace qoesim::net
