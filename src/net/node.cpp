#include "net/node.hpp"

#include <stdexcept>

namespace qoesim::net {

std::size_t Node::add_port(Link* out) {
  if (out == nullptr) throw std::invalid_argument("Node::add_port: null link");
  ports_.push_back(out);
  return ports_.size() - 1;
}

void Node::set_next_hop(NodeId dst, std::size_t port) {
  if (port >= ports_.size()) {
    throw std::out_of_range("Node::set_next_hop: bad port");
  }
  routes_[dst] = port;
}

void Node::set_default_route(std::size_t port) {
  if (port >= ports_.size()) {
    throw std::out_of_range("Node::set_default_route: bad port");
  }
  default_route_ = static_cast<std::ptrdiff_t>(port);
}

void Node::receive(Packet&& p) {
  if (p.dst == id_) {
    deliver_local(std::move(p));
  } else {
    send(std::move(p));  // forward
  }
}

void Node::send(Packet&& p) {
  auto it = routes_.find(p.dst);
  std::ptrdiff_t port = -1;
  if (it != routes_.end()) {
    port = static_cast<std::ptrdiff_t>(it->second);
  } else if (default_route_ >= 0) {
    port = default_route_;
  }
  if (port < 0) {
    ++unrouted_;
    return;
  }
  ports_[static_cast<std::size_t>(port)]->send(std::move(p));
}

void Node::deliver_local(Packet&& p) {
  const std::uint8_t proto = static_cast<std::uint8_t>(p.proto);
  std::uint32_t local_port, remote_port;
  if (p.proto == Protocol::kTcp) {
    local_port = p.tcp.dst_port;
    remote_port = p.tcp.src_port;
  } else {
    local_port = p.udp.dst_port;
    remote_port = p.udp.src_port;
  }
  // Copy the handler before invoking: handlers may unbind themselves (and
  // thus destroy the stored std::function) while running.
  const ConnKey key{proto, local_port, p.src, remote_port};
  if (auto it = connections_.find(key); it != connections_.end()) {
    Handler h = it->second;
    h(std::move(p));
    return;
  }
  if (auto it = listeners_.find({proto, local_port}); it != listeners_.end()) {
    Handler h = it->second;
    h(std::move(p));
    return;
  }
  ++undelivered_;
}

void Node::bind_connection(Protocol proto, std::uint32_t local_port,
                           NodeId remote, std::uint32_t remote_port,
                           Handler h) {
  connections_[ConnKey{static_cast<std::uint8_t>(proto), local_port, remote,
                       remote_port}] = std::move(h);
}

void Node::unbind_connection(Protocol proto, std::uint32_t local_port,
                             NodeId remote, std::uint32_t remote_port) {
  connections_.erase(ConnKey{static_cast<std::uint8_t>(proto), local_port,
                             remote, remote_port});
}

void Node::bind_listener(Protocol proto, std::uint32_t local_port, Handler h) {
  listeners_[{static_cast<std::uint8_t>(proto), local_port}] = std::move(h);
}

void Node::unbind_listener(Protocol proto, std::uint32_t local_port) {
  listeners_.erase({static_cast<std::uint8_t>(proto), local_port});
}

}  // namespace qoesim::net
