// qoesim -- open-addressing demux table.
//
// FlatTable maps a packed transport 4-tuple key to a handler with linear
// probing over a power-of-two slot array. It replaces the red-black-tree
// std::map the node demux used: a lookup is one hash plus a short cache-
// friendly scan instead of a pointer-chasing tree walk, and bind/unbind of
// a flow is O(1) amortized with no per-entry allocation, so Harpoon-style
// flow churn stops paying a tree rebalance plus node allocation per flow.
//
// Deletion is tombstone-free (backward-shift): erasing an entry shifts the
// following probe-chain members back over the hole, so the table never
// degrades under sustained bind/unbind churn and a miss always stops at
// the first empty slot.
//
// Every bind stamps the entry with a table-unique, monotonically
// increasing generation. The node's delivery path uses it to detect
// whether a binding was replaced or removed while its handler ran (see
// Node::deliver_local); generations survive growth rehashes.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/annotations.hpp"

namespace qoesim::net {

/// Transport demux key: {proto, local_port, remote node, remote_port}
/// packed into two words. Wildcard listeners use kWildcardRemote /
/// remote_port 0 (no real peer ever matches: node ids are dense small
/// integers and kWildcardRemote is the all-ones sentinel).
struct DemuxKey {
  std::uint64_t hi = kEmptyHi;  ///< proto << 32 | local_port
  std::uint64_t lo = 0;         ///< remote << 32 | remote_port

  /// hi value marking an empty slot; proto is 8-bit so no packed key
  /// ever reaches it.
  static constexpr std::uint64_t kEmptyHi = ~0ull;
  static constexpr std::uint32_t kWildcardRemote = 0xffffffffu;

  static DemuxKey pack(std::uint8_t proto, std::uint32_t local_port,
                       std::uint32_t remote, std::uint32_t remote_port) {
    DemuxKey k;
    k.hi = (static_cast<std::uint64_t>(proto) << 32) | local_port;
    k.lo = (static_cast<std::uint64_t>(remote) << 32) | remote_port;
    return k;
  }

  static DemuxKey wildcard(std::uint8_t proto, std::uint32_t local_port) {
    return pack(proto, local_port, kWildcardRemote, 0);
  }

  bool operator==(const DemuxKey&) const = default;
};

/// SplitMix64-style mix of both key words; the multiply-xorshift cascade
/// spreads the low port/node bits across the whole word so power-of-two
/// masking still probes uniformly.
inline std::uint64_t demux_hash(const DemuxKey& k) {
  std::uint64_t x = k.hi * 0x9e3779b97f4a7c15ull ^ k.lo;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Shard-plane: a table is owned by one Node and mutated only from the
/// owning shard (bind/unbind on connection churn, find on every delivery).
/// All structure-touching operations require the shard capability; the
/// const counters (size/capacity/rehashes) do not.
template <typename V>
class QOESIM_SHARD_PLANE FlatTable {
 public:
  struct Slot {
    DemuxKey key;
    std::uint64_t gen = 0;  ///< stamped by bind(); see header comment
    V value{};

    bool empty() const { return key.hi == DemuxKey::kEmptyHi; }
  };

  FlatTable() = default;
  FlatTable(FlatTable&&) = default;
  FlatTable& operator=(FlatTable&&) = default;
  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;

  /// Live entries / current slot-array size / growth rehashes so far.
  /// `rehashes()` staying flat across a churn phase proves the steady
  /// state allocates nothing (the slot array is the only allocation).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t rehashes() const { return rehashes_; }

  /// Grow so `n` entries fit without rehashing.
  void reserve(std::size_t n) QOESIM_REQUIRES(::qoesim::shard_plane) {
    std::size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap <<= 1;
    if (cap > slots_.size()) grow_to(cap);
  }

  /// Insert or replace. Returns the entry's fresh generation stamp and
  /// whether the key was newly inserted (false = an existing binding was
  /// replaced in place).
  std::pair<std::uint64_t, bool> bind(const DemuxKey& key, V&& value)
      QOESIM_REQUIRES(::qoesim::shard_plane) {
    if (slots_.empty()) grow_to(kMinCapacity);
    const std::uint64_t gen = ++next_gen_;
    // One scan does both jobs: tombstone-free probing means the first
    // empty slot hit while looking for the key is the insert position.
    std::size_t mask = slots_.size() - 1;
    std::size_t i = demux_hash(key) & mask;
    while (!slots_[i].empty()) {
      if (slots_[i].key == key) {  // replace in place: no growth
        slots_[i].gen = gen;
        slots_[i].value = std::move(value);
        return {gen, false};
      }
      i = (i + 1) & mask;
    }
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      grow_to(slots_.size() * 2);  // relocates the chain: re-probe
      mask = slots_.size() - 1;
      i = demux_hash(key) & mask;
      while (!slots_[i].empty()) i = (i + 1) & mask;
    }
    slots_[i].key = key;
    slots_[i].gen = gen;
    slots_[i].value = std::move(value);
    ++size_;
    return {gen, true};
  }

  /// Lookup; nullptr on miss. The pointer is invalidated by any bind or
  /// erase (growth or backward-shift may relocate entries).
  Slot* find(const DemuxKey& key) QOESIM_REQUIRES(::qoesim::shard_plane) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = demux_hash(key) & mask;
    while (!slots_[i].empty()) {
      if (slots_[i].key == key) return &slots_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Remove a key; false if absent. Backward-shift: members of the probe
  /// chain after the hole move back one step when doing so does not place
  /// them before their home slot, so no tombstone is left behind.
  bool erase(const DemuxKey& key) QOESIM_REQUIRES(::qoesim::shard_plane) {
    Slot* s = find(key);
    if (s == nullptr) return false;
    erase_slot(s);
    return true;
  }

  /// Remove a key only if its entry still carries generation `gen`.
  /// Lets a deferred unbind detect that the binding it meant to remove
  /// was already replaced by a new flow on the same 4-tuple (same-
  /// timestamp churn) and leave the newcomer alone. False when the key is
  /// absent or the generation moved on.
  bool erase_if_gen(const DemuxKey& key, std::uint64_t gen)
      QOESIM_REQUIRES(::qoesim::shard_plane) {
    Slot* s = find(key);
    if (s == nullptr || s->gen != gen) return false;
    erase_slot(s);
    return true;
  }

  /// Probe-length distribution over the live table: how far each entry
  /// sits from its home slot (length 1 = home hit). A pure read over the
  /// slot array -- deterministic, so benches may print it. The histogram's
  /// last bucket aggregates lengths >= 8.
  struct ProbeStats {
    std::uint64_t entries = 0;
    std::uint64_t max_len = 0;
    double mean_len = 0.0;
    std::uint64_t histogram[8] = {};
  };
  ProbeStats probe_stats() const {
    ProbeStats ps;
    if (slots_.empty()) return ps;
    const std::size_t mask = slots_.size() - 1;
    std::uint64_t total = 0;
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (slots_[j].empty()) continue;
      const std::size_t home = demux_hash(slots_[j].key) & mask;
      const std::uint64_t len = ((j - home) & mask) + 1;
      ++ps.entries;
      total += len;
      if (len > ps.max_len) ps.max_len = len;
      ++ps.histogram[len >= 8 ? 7 : len - 1];
    }
    if (ps.entries > 0) {
      ps.mean_len =
          static_cast<double>(total) / static_cast<double>(ps.entries);
    }
    return ps;
  }

  /// Wall-clock microbench: one full find-equivalent probe per live
  /// entry, visiting the slot array in a strided (cache-hostile) order so
  /// the figure reflects random flow arrival, not a linear sweep. Returns
  /// {probes, total_ns}; bench_megaflows divides for its ns/lookup curve.
  /// A pure read like probe_stats() -- but the timing is wall-clock, so
  /// the result belongs on stderr, never in figure stdout.
  std::pair<std::uint64_t, std::uint64_t> timed_find_walk() const {
    if (slots_.empty()) return {0, 0};
    const std::size_t mask = slots_.size() - 1;
    // Any odd stride is coprime with the power-of-two capacity, so the
    // walk visits every slot exactly once.
    const std::size_t stride = 0x9e3779b97f4a7c15ull | 1ull;
    std::uint64_t probes = 0;
    std::uint64_t checksum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t j = 0;
    for (std::size_t n = 0; n < slots_.size(); ++n, j = (j + stride) & mask) {
      if (slots_[j].empty()) continue;
      const DemuxKey key = slots_[j].key;
      std::size_t i = demux_hash(key) & mask;
      while (!(slots_[i].key == key)) i = (i + 1) & mask;
      checksum += slots_[i].gen;  // keep the probe loop observable
      ++probes;
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    (void)checksum;
    return {probes, static_cast<std::uint64_t>(ns)};
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void erase_slot(Slot* s) QOESIM_REQUIRES(::qoesim::shard_plane) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(s - slots_.data());
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (slots_[j].empty()) break;
      const std::size_t home = demux_hash(slots_[j].key) & mask;
      // slots_[j] may back-fill the hole at i only if i lies within its
      // probe path, i.e. its displacement from home reaches past i.
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i].key = DemuxKey{};
    slots_[i].gen = 0;
    slots_[i].value = V{};
    --size_;
  }

  void grow_to(std::size_t cap) QOESIM_REQUIRES(::qoesim::shard_plane) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(cap);
    const std::size_t mask = cap - 1;
    for (Slot& s : old) {
      if (s.empty()) continue;
      std::size_t i = demux_hash(s.key) & mask;
      while (!slots_[i].empty()) i = (i + 1) & mask;
      slots_[i] = std::move(s);  // keeps the generation stamp
    }
    if (!old.empty()) ++rehashes_;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint64_t next_gen_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace qoesim::net
