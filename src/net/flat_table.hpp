// qoesim -- open-addressing demux table.
//
// FlatTable maps a packed transport 4-tuple key to a handler with linear
// probing over a power-of-two slot array. It replaces the red-black-tree
// std::map the node demux used: a lookup is one hash plus a short cache-
// friendly scan instead of a pointer-chasing tree walk, and bind/unbind of
// a flow is O(1) amortized with no per-entry allocation, so Harpoon-style
// flow churn stops paying a tree rebalance plus node allocation per flow.
//
// Deletion is tombstone-free (backward-shift): erasing an entry shifts the
// following probe-chain members back over the hole, so the table never
// degrades under sustained bind/unbind churn and a miss always stops at
// the first empty slot.
//
// Every bind stamps the entry with a table-unique, monotonically
// increasing generation. The node's delivery path uses it to detect
// whether a binding was replaced or removed while its handler ran (see
// Node::deliver_local); generations survive growth rehashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/annotations.hpp"

namespace qoesim::net {

/// Transport demux key: {proto, local_port, remote node, remote_port}
/// packed into two words. Wildcard listeners use kWildcardRemote /
/// remote_port 0 (no real peer ever matches: node ids are dense small
/// integers and kWildcardRemote is the all-ones sentinel).
struct DemuxKey {
  std::uint64_t hi = kEmptyHi;  ///< proto << 32 | local_port
  std::uint64_t lo = 0;         ///< remote << 32 | remote_port

  /// hi value marking an empty slot; proto is 8-bit so no packed key
  /// ever reaches it.
  static constexpr std::uint64_t kEmptyHi = ~0ull;
  static constexpr std::uint32_t kWildcardRemote = 0xffffffffu;

  static DemuxKey pack(std::uint8_t proto, std::uint32_t local_port,
                       std::uint32_t remote, std::uint32_t remote_port) {
    DemuxKey k;
    k.hi = (static_cast<std::uint64_t>(proto) << 32) | local_port;
    k.lo = (static_cast<std::uint64_t>(remote) << 32) | remote_port;
    return k;
  }

  static DemuxKey wildcard(std::uint8_t proto, std::uint32_t local_port) {
    return pack(proto, local_port, kWildcardRemote, 0);
  }

  bool operator==(const DemuxKey&) const = default;
};

/// SplitMix64-style mix of both key words; the multiply-xorshift cascade
/// spreads the low port/node bits across the whole word so power-of-two
/// masking still probes uniformly.
inline std::uint64_t demux_hash(const DemuxKey& k) {
  std::uint64_t x = k.hi * 0x9e3779b97f4a7c15ull ^ k.lo;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Shard-plane: a table is owned by one Node and mutated only from the
/// owning shard (bind/unbind on connection churn, find on every delivery).
/// All structure-touching operations require the shard capability; the
/// const counters (size/capacity/rehashes) do not.
template <typename V>
class QOESIM_SHARD_PLANE FlatTable {
 public:
  struct Slot {
    DemuxKey key;
    std::uint64_t gen = 0;  ///< stamped by bind(); see header comment
    V value{};

    bool empty() const { return key.hi == DemuxKey::kEmptyHi; }
  };

  FlatTable() = default;
  FlatTable(FlatTable&&) = default;
  FlatTable& operator=(FlatTable&&) = default;
  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;

  /// Live entries / current slot-array size / growth rehashes so far.
  /// `rehashes()` staying flat across a churn phase proves the steady
  /// state allocates nothing (the slot array is the only allocation).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t rehashes() const { return rehashes_; }

  /// Grow so `n` entries fit without rehashing.
  void reserve(std::size_t n) QOESIM_REQUIRES(::qoesim::shard_plane) {
    std::size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap <<= 1;
    if (cap > slots_.size()) grow_to(cap);
  }

  /// Insert or replace. Returns the entry's fresh generation stamp and
  /// whether the key was newly inserted (false = an existing binding was
  /// replaced in place).
  std::pair<std::uint64_t, bool> bind(const DemuxKey& key, V&& value)
      QOESIM_REQUIRES(::qoesim::shard_plane) {
    if (slots_.empty()) grow_to(kMinCapacity);
    const std::uint64_t gen = ++next_gen_;
    // One scan does both jobs: tombstone-free probing means the first
    // empty slot hit while looking for the key is the insert position.
    std::size_t mask = slots_.size() - 1;
    std::size_t i = demux_hash(key) & mask;
    while (!slots_[i].empty()) {
      if (slots_[i].key == key) {  // replace in place: no growth
        slots_[i].gen = gen;
        slots_[i].value = std::move(value);
        return {gen, false};
      }
      i = (i + 1) & mask;
    }
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      grow_to(slots_.size() * 2);  // relocates the chain: re-probe
      mask = slots_.size() - 1;
      i = demux_hash(key) & mask;
      while (!slots_[i].empty()) i = (i + 1) & mask;
    }
    slots_[i].key = key;
    slots_[i].gen = gen;
    slots_[i].value = std::move(value);
    ++size_;
    return {gen, true};
  }

  /// Lookup; nullptr on miss. The pointer is invalidated by any bind or
  /// erase (growth or backward-shift may relocate entries).
  Slot* find(const DemuxKey& key) QOESIM_REQUIRES(::qoesim::shard_plane) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = demux_hash(key) & mask;
    while (!slots_[i].empty()) {
      if (slots_[i].key == key) return &slots_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Remove a key; false if absent. Backward-shift: members of the probe
  /// chain after the hole move back one step when doing so does not place
  /// them before their home slot, so no tombstone is left behind.
  bool erase(const DemuxKey& key) QOESIM_REQUIRES(::qoesim::shard_plane) {
    Slot* s = find(key);
    if (s == nullptr) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(s - slots_.data());
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (slots_[j].empty()) break;
      const std::size_t home = demux_hash(slots_[j].key) & mask;
      // slots_[j] may back-fill the hole at i only if i lies within its
      // probe path, i.e. its displacement from home reaches past i.
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i].key = DemuxKey{};
    slots_[i].gen = 0;
    slots_[i].value = V{};
    --size_;
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void grow_to(std::size_t cap) QOESIM_REQUIRES(::qoesim::shard_plane) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(cap);
    const std::size_t mask = cap - 1;
    for (Slot& s : old) {
      if (s.empty()) continue;
      std::size_t i = demux_hash(s.key) & mask;
      while (!slots_[i].empty()) i = (i + 1) & mask;
      slots_[i] = std::move(s);  // keeps the generation stamp
    }
    if (!old.empty()) ++rehashes_;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint64_t next_gen_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace qoesim::net
