#include "net/packet.hpp"

#include <sstream>

namespace qoesim::net {

std::string Packet::describe() const {
  std::ostringstream out;
  out << (proto == Protocol::kTcp ? "TCP" : "UDP") << " #" << uid << " "
      << src << "->" << dst << " " << size_bytes << "B";
  if (proto == Protocol::kTcp) {
    out << " [";
    if (tcp.syn) out << "S";
    if (tcp.fin) out << "F";
    if (tcp.has_ack) out << "A";
    out << " seq=" << tcp.seq << " ack=" << tcp.ack
        << " len=" << tcp.payload << "]";
  } else {
    out << " [" << udp.src_port << "->" << udp.dst_port
        << " len=" << udp.payload << "]";
  }
  return out.str();
}

}  // namespace qoesim::net
