// qoesim -- passive measurement instruments.
//
// LinkMonitor reproduces the paper's QoS instrumentation: per-bin link
// utilization (Table 1 reports mean/sd of per-second utilization; Fig. 5
// draws boxplots of the same bins) and loss rate at the buffer. A warmup
// prefix can be excluded so statistics reflect steady state.
#pragma once

#include <cstdint>
#include <string>

#include "net/link.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace qoesim::net {

class LinkMonitor {
 public:
  /// Attaches to `link` (registers the tx observer; one monitor per link).
  LinkMonitor(Link& link, Time bin_width = Time::seconds(1));

  /// Per-bin utilization in [0, ~1], for bins fully inside [from, to).
  stats::Samples utilization(Time from, Time to) const;

  /// Mean utilization over [from, to).
  double mean_utilization(Time from, Time to) const;

  /// Fraction of offered packets dropped at this link's buffer since
  /// attachment (whole-run figure, as in Table 1).
  double loss_rate() const { return link_.queue().stats().drop_rate(); }

  /// Fraction of offered packets CE-marked instead of dropped (ECN).
  double mark_rate() const { return link_.queue().stats().mark_rate(); }

  /// Mean per-packet queueing delay (seconds) as measured at the buffer.
  double mean_queue_delay_s() const { return link_.queue_delay().mean(); }

  const Link& link() const { return link_; }
  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }

 private:
  Link& link_;
  stats::BinnedSeries bytes_per_bin_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
};

}  // namespace qoesim::net
