#include "net/red.hpp"

#include "sim/annotations.hpp"

#include <algorithm>
#include <cmath>

namespace qoesim::net {

RedQueue::RedQueue(std::size_t capacity_packets, RedParams params,
                   std::uint64_t seed)
    : QueueDiscipline(capacity_packets), params_(params), rng_(seed) {}

void RedQueue::set_drain_rate(double bps) {
  if (bps > 0.0) {
    params_.mean_pkt_time =
        Time::seconds(static_cast<double>(kMtuBytes) * 8.0 / bps);
  }
}

QOESIM_HOT bool RedQueue::do_enqueue(Packet&& p, Time now) {
  // Static-only bridge (the override's base declaration carries no shard
  // annotation): callers were dynamically checked upstream in Link::send.
  shard_plane.assert_held();
  // Update the average queue estimate on every arrival. Across an idle
  // period the estimate decays as if m empty-queue samples had been taken
  // (Floyd & Jacobson eq. 3) instead of freezing at its last busy value.
  if (idle_) {
    const double m =
        (now - idle_since_).sec() / std::max(1e-12, params_.mean_pkt_time.sec());
    if (m > 0.0) avg_ *= std::pow(1.0 - params_.weight, m);
    // The decay above accounts for the idle time up to `now`; if this
    // arrival is dropped the queue stays empty and the idle period simply
    // continues from here (idle_ is cleared only on admission below).
    idle_since_ = now;
  } else {
    avg_ = (1.0 - params_.weight) * avg_ +
           params_.weight * static_cast<double>(q_.size());
  }

  const double min_th = params_.min_th_fraction * static_cast<double>(capacity_);
  const double max_th = params_.max_th_fraction * static_cast<double>(capacity_);

  bool drop = false;
  // Forced drops are never converted to marks: a full buffer cannot admit,
  // and avg >= max_th means marking has failed to contain the load, so the
  // sender gets the hard signal (Floyd's ECN RED / Linux red_enqueue).
  bool hard = false;
  if (q_.size() >= capacity_) {
    drop = true;  // hard tail drop
    hard = true;
  } else if (avg_ >= max_th) {
    drop = true;
    hard = true;
  } else if (avg_ >= min_th) {
    // Probabilistic early drop; the 1/(1 - count*pb) correction spreads
    // drops uniformly between forced drops (Floyd & Jacobson, eq. 2).
    const double pb =
        params_.max_p * (avg_ - min_th) / std::max(1e-9, max_th - min_th);
    const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
    if (rng_.bernoulli(pa)) {
      drop = true;
    } else {
      ++count_since_drop_;
    }
  } else {
    count_since_drop_ = 0;
  }

  if (drop) {
    count_since_drop_ = 0;
    // RFC 3168 §5: with ECN the early-drop decision CE-marks ECT packets
    // and admits them; the congestion signal reaches the sender without
    // losing the packet. A full buffer still has to drop.
    if (!hard && can_mark(p)) {
      apply_mark(p);
    } else {
      count_drop(p);
      return false;
    }
  }
  bytes_ += p.size_bytes;
  // qoesim-lint: allow(hot-alloc) -- capacity_-bounded deque; blocks recycled in steady state
  q_.push_back(std::move(p));
  idle_ = false;
  return true;
}

QOESIM_HOT std::optional<Packet> RedQueue::do_dequeue(Time now) {
  if (q_.empty()) {
    // The transmitter found the queue empty: an idle period starts (ns-2
    // does the same on an empty dequeue).
    if (!idle_) {
      idle_ = true;
      idle_since_ = now;
    }
    return std::nullopt;
  }
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  if (q_.empty()) {
    idle_ = true;
    idle_since_ = now;
  }
  return p;
}

}  // namespace qoesim::net
