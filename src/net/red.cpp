#include "net/red.hpp"

#include <algorithm>

namespace qoesim::net {

RedQueue::RedQueue(std::size_t capacity_packets, RedParams params,
                   std::uint64_t seed)
    : QueueDiscipline(capacity_packets), params_(params), rng_(seed) {}

bool RedQueue::do_enqueue(Packet&& p, Time /*now*/) {
  // Update the average queue estimate on every arrival.
  avg_ = (1.0 - params_.weight) * avg_ +
         params_.weight * static_cast<double>(q_.size());

  const double min_th = params_.min_th_fraction * static_cast<double>(capacity_);
  const double max_th = params_.max_th_fraction * static_cast<double>(capacity_);

  bool drop = false;
  if (q_.size() >= capacity_) {
    drop = true;  // hard tail drop
  } else if (avg_ >= max_th) {
    drop = true;
  } else if (avg_ >= min_th) {
    // Probabilistic early drop; the 1/(1 - count*pb) correction spreads
    // drops uniformly between forced drops (Floyd & Jacobson, eq. 2).
    const double pb =
        params_.max_p * (avg_ - min_th) / std::max(1e-9, max_th - min_th);
    const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
    if (rng_.bernoulli(pa)) {
      drop = true;
    } else {
      ++count_since_drop_;
    }
  } else {
    count_since_drop_ = 0;
  }

  if (drop) {
    count_since_drop_ = 0;
    count_drop(p);
    return false;
  }
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> RedQueue::do_dequeue(Time /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

}  // namespace qoesim::net
