#include "net/link.hpp"

#include <stdexcept>
#include <utility>

namespace qoesim::net {

Link::Link(Simulation& sim, std::string name, double rate_bps, Time prop_delay,
           std::unique_ptr<QueueDiscipline> queue)
    : sim_(sim),
      name_(std::move(name)),
      rate_bps_(rate_bps),
      prop_delay_(prop_delay),
      queue_(std::move(queue)) {
  if (rate_bps_ <= 0.0) throw std::invalid_argument("Link: rate must be > 0");
  if (!queue_) throw std::invalid_argument("Link: queue required");
}

void Link::send(Packet&& p) {
  queue_->enqueue(std::move(p), sim_.now());
  maybe_start_tx();
}

void Link::maybe_start_tx() {
  if (busy_) return;
  auto next = queue_->dequeue(sim_.now());
  if (!next) return;
  busy_ = true;
  queue_delay_.add((sim_.now() - next->enqueued_at).sec());
  const Time tx = serialization_time(next->size_bytes);
  // Move the packet into the completion event.
  auto pkt = std::make_shared<Packet>(std::move(*next));
  sim_.after(tx, [this, pkt]() mutable { on_tx_complete(std::move(*pkt)); });
}

void Link::on_tx_complete(Packet&& p) {
  busy_ = false;
  ++delivered_packets_;
  delivered_bytes_ += p.size_bytes;
  for (const auto& observer : tx_observers_) observer(p, sim_.now());
  if (sink_) {
    auto pkt = std::make_shared<Packet>(std::move(p));
    sim_.after(prop_delay_, [this, pkt]() mutable {
      if (sink_) sink_(std::move(*pkt));
    });
  }
  maybe_start_tx();
}

}  // namespace qoesim::net
