#include "net/link.hpp"

#include "net/mailbox.hpp"
#include "sim/annotations.hpp"

#include <stdexcept>
#include <utility>

namespace qoesim::net {

Link::Link(Simulation& sim, std::string name, double rate_bps, Time prop_delay,
           std::unique_ptr<QueueDiscipline> queue)
    : sim_(sim),
      name_(std::move(name)),
      rate_bps_(rate_bps),
      prop_delay_(prop_delay),
      queue_(std::move(queue)) {
  if (rate_bps_ <= 0.0) throw std::invalid_argument("Link: rate must be > 0");
  if (!queue_) throw std::invalid_argument("Link: queue required");
  queue_->set_drain_rate(rate_bps_);
}

QOESIM_HOT void Link::send(Packet&& p) {
  sim_.shard().assert_held();
  queue_->enqueue(std::move(p), sim_.now());
  maybe_start_tx();
}

QOESIM_HOT void Link::maybe_start_tx() {
  if (busy_) return;
  auto next = queue_->dequeue(sim_.now());
  if (!next) return;
  busy_ = true;
  queue_delay_.add((sim_.now() - next->enqueued_at).sec());
  const Time tx = serialization_time(next->size_bytes);
  // The packet moves into a pooled slot; the completion event captures only
  // {this, slot}, which stays inside SmallCallback's inline buffer.
  const PacketPool::SlotId slot = pool_.acquire(std::move(*next));
  sim_.after(tx, [this, slot] {
    sim_.shard().assert_held();  // event fires inside the owning epoch
    on_tx_complete(slot);
  });
}

QOESIM_HOT void Link::on_tx_complete(PacketPool::SlotId slot) {
  busy_ = false;
  const Packet& p = pool_.at(slot);
  ++delivered_packets_;
  delivered_bytes_ += p.size_bytes;
  for (const auto& observer : tx_observers_) observer(p, sim_.now());
  if (mailbox_ != nullptr) {
    // Cross-shard path: the packet leaves this shard's pool now and
    // becomes a value-type record until the destination shard's barrier
    // drain admits it. The mailbox's FIFO counter preserves this link's
    // tx order; the delivery timestamp is fixed here so queueing and
    // serialization dynamics stay identical to the WireRing path.
    mailbox_->push(sim_.now() + prop_delay_, pool_.release(slot));
  } else if (sink_) {
    // Serialization completions are ordered and prop_delay_ is constant,
    // so deliver_at is non-decreasing along the ring and one delivery
    // event per link suffices. Each packet still reserves its FIFO
    // position now: same-timestamp ties (e.g. an arrival racing the
    // tx-complete that frees a buffer slot) resolve exactly as with the
    // per-packet propagation events this replaces.
    const bool was_idle = wire_.empty();
    wire_.push({slot, sim_.scheduler().allocate_seq(),
                sim_.now() + prop_delay_});
    if (was_idle) arm_delivery(wire_.front());
  } else {
    (void)pool_.release(slot);
  }
  maybe_start_tx();
}

QOESIM_HOT void Link::arm_delivery(const WireRing::Entry& entry) {
  // Always a fresh schedule: when called from inside drain_wire the old
  // event has just fired, so this reuses the just-freed arena slot (the
  // same pooled re-arm idiom as the periodic app timers) -- a fired event
  // cannot be rescheduled. The entry's reserved seq fixes the FIFO
  // position; the handle is not kept because the event is never moved or
  // cancelled.
  sim_.scheduler().schedule_at_seq(entry.deliver_at, entry.seq, [this] {
    sim_.shard().assert_held();  // event fires inside the owning epoch
    drain_wire();
  });
}

QOESIM_HOT void Link::drain_wire() {
  // Exactly one packet per firing: the next entry re-arms at its own
  // reserved seq even when it shares this deliver_at (possible only for
  // zero serialization times), so every delivery keeps its exact FIFO
  // position among same-timestamp events.
  const PacketPool::SlotId slot = wire_.front().slot;
  wire_.pop();
  Packet p = pool_.release(slot);
  for (const auto& observer : rx_observers_) observer(p, sim_.now());
  if (sink_) sink_(std::move(p));
  if (!wire_.empty()) arm_delivery(wire_.front());
}

}  // namespace qoesim::net
