// qoesim -- unidirectional link with an egress buffer.
//
// A Link models one direction of a physical link: packets offered while the
// transmitter is busy wait in the queue discipline; serialization takes
// size/rate; delivery happens one propagation delay after serialization
// completes. This is where all queueing delay and packet loss in the
// simulated testbeds arise (the paper's "bottleneck interface").
//
// In-flight packets (serializing or propagating) live in a per-link
// PacketPool and are referenced by slot id from scheduler callbacks, so
// steady-state forwarding performs no heap allocation. Packets on the wire
// wait in a WireRing drained by a single delivery event per link instead of
// one propagation event per packet (see packet_pool.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/annotations.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"
#include "stats/summary.hpp"

namespace qoesim::net {

class ShardMailbox;

/// Shard-plane: a link's pool, ring, and queue discipline belong to the
/// shard running its simulation. send() asserts the capability; the
/// internal tx/delivery machinery requires it statically.
class QOESIM_SHARD_PLANE Link {
 public:
  using DeliverFn = std::function<void(Packet&&)>;
  /// Observer invoked when a packet finishes serialization (tx'd onto the
  /// wire). Used by LinkMonitor for utilization accounting.
  using TxObserver = std::function<void(const Packet&, Time)>;

  Link(Simulation& sim, std::string name, double rate_bps, Time prop_delay,
       std::unique_ptr<QueueDiscipline> queue);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Bind the receiving side (typically Node::receive of the peer).
  void set_sink(DeliverFn sink) { sink_ = std::move(sink); }
  /// Cross-shard (mailbox) delivery: packets that finish serialization
  /// are released from the pool and pushed into `mailbox` with their
  /// arrival timestamp instead of riding the in-scheduler WireRing; the
  /// destination shard's barrier drain materializes the delivery events.
  /// Takes precedence over the sink. rx observers do not fire on this
  /// path (the receive-side tap lives in the destination shard's inbox,
  /// which monitors don't hook; LinkMonitor needs only tx observers).
  void set_mailbox(ShardMailbox* mailbox) { mailbox_ = mailbox; }
  /// Register an additional transmission observer (multiple supported:
  /// monitors and tracers can coexist).
  void add_tx_observer(TxObserver obs) {
    tx_observers_.push_back(std::move(obs));
  }
  /// Register a delivery observer, invoked when a packet finishes
  /// propagation, just before it is handed to the sink (the receive-side
  /// tap point tracers use to measure one-way link latency).
  void add_rx_observer(TxObserver obs) {
    rx_observers_.push_back(std::move(obs));
  }
  [[deprecated("use add_tx_observer")]] void set_tx_observer(TxObserver obs) {
    add_tx_observer(std::move(obs));
  }

  /// Offer a packet for transmission (enqueue; may drop).
  void send(Packet&& p);

  Time serialization_time(std::uint32_t bytes) const {
    return Time::seconds(static_cast<double>(bytes) * 8.0 / rate_bps_);
  }

  const std::string& name() const { return name_; }
  double rate_bps() const { return rate_bps_; }
  Time prop_delay() const { return prop_delay_; }
  bool transmitting() const { return busy_; }

  QueueDiscipline& queue() { return *queue_; }
  const QueueDiscipline& queue() const { return *queue_; }

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }

  /// Per-packet time spent waiting in the buffer (excludes serialization).
  const stats::RunningStats& queue_delay() const { return queue_delay_; }

  /// In-flight pool counters (for the zero-allocation forwarding tests).
  const PacketPool::Stats& pool_stats() const { return pool_.stats(); }
  /// Packets currently riding the propagation delay.
  std::size_t wire_depth() const { return wire_.size(); }

 private:
  void maybe_start_tx() QOESIM_REQUIRES_SHARD;
  void on_tx_complete(PacketPool::SlotId slot) QOESIM_REQUIRES_SHARD;
  void arm_delivery(const WireRing::Entry& entry) QOESIM_REQUIRES_SHARD;
  void drain_wire() QOESIM_REQUIRES_SHARD;

  Simulation& sim_;
  std::string name_;
  double rate_bps_;
  Time prop_delay_;
  std::unique_ptr<QueueDiscipline> queue_;
  DeliverFn sink_;
  ShardMailbox* mailbox_ = nullptr;
  std::vector<TxObserver> tx_observers_;
  std::vector<TxObserver> rx_observers_;

  PacketPool pool_;  // packets serializing or on the wire
  WireRing wire_;    // FIFO of propagating packets

  bool busy_ = false;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  stats::RunningStats queue_delay_;
};

}  // namespace qoesim::net
