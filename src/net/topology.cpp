#include "net/topology.hpp"

#include <deque>
#include <limits>

namespace qoesim::net {

Node& Topology::add_node(const std::string& name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(sim_, id, name));
  nodes_.back()->set_stats_fold(node_stats_);
  adjacency_.emplace_back();
  return *nodes_.back();
}

Link* Topology::make_link(Node& from, Node& to, const LinkSpec& spec) {
  std::string name = spec.name.empty()
                         ? from.name() + "->" + to.name()
                         : spec.name;
  // Per-link queue seed derived from the scenario seed: RED instances in
  // different sweep cells (and on different links of one topology) must
  // not share one drop lottery. The link index salts duplicate names.
  const std::uint64_t queue_seed = RandomStream::derive_seed(
      sim_.seed(), "queue/" + std::to_string(links_.size()) + "/" + name);
  auto queue = make_queue(spec.queue, spec.buffer_packets, queue_seed);
  queue->set_ecn_marking(spec.ecn);
  links_.push_back(std::make_unique<Link>(sim_, std::move(name), spec.rate_bps,
                                          spec.delay, std::move(queue)));
  Link* link = links_.back().get();
  Node* dest = &to;
  link->set_sink([dest](Packet&& p) { dest->receive(std::move(p)); });
  const std::size_t port = from.add_port(link);
  adjacency_[from.id()].emplace_back(to.id(), port);
  return link;
}

Topology::LinkPair Topology::connect(Node& a, Node& b, LinkSpec a_to_b,
                                     LinkSpec b_to_a) {
  LinkPair pair;
  pair.forward = make_link(a, b, a_to_b);
  pair.backward = make_link(b, a, b_to_a);
  return pair;
}

Node::Stats Topology::node_stats() const {
  Node::Stats total;
  for (const auto& node : nodes_) total += node->stats();
  return total;
}

void Topology::compute_routes() {
  const std::size_t n = nodes_.size();
  // BFS from every destination over reversed edges would be cheaper, but n
  // is tiny (testbeds have ~12 nodes); BFS from every source is clearer.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<std::size_t> dist(n, std::numeric_limits<std::size_t>::max());
    std::vector<std::ptrdiff_t> first_port(n, -1);
    std::deque<NodeId> frontier;
    dist[src] = 0;
    frontier.push_back(src);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, port] : adjacency_[u]) {
        if (dist[v] != std::numeric_limits<std::size_t>::max()) continue;
        dist[v] = dist[u] + 1;
        first_port[v] = u == src ? static_cast<std::ptrdiff_t>(port)
                                 : first_port[u];
        frontier.push_back(v);
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst != src && first_port[dst] >= 0) {
        nodes_[src]->set_next_hop(dst,
                                  static_cast<std::size_t>(first_port[dst]));
      }
    }
  }
}

}  // namespace qoesim::net
