#include "net/topology.hpp"

#include <deque>
#include <limits>
#include <stdexcept>

namespace qoesim::net {

namespace {

using Adjacency = std::vector<std::vector<std::pair<NodeId, std::size_t>>>;

// BFS on hop count from every source, shared by both topology variants so
// a sharded build routes exactly like a single-simulation one.
// Deterministic tie-breaking: neighbors expand in adjacency (= link
// construction) order.
void bfs_routes(const Adjacency& adjacency,
                const std::vector<std::unique_ptr<Node>>& nodes) {
  const std::size_t n = nodes.size();
  for (NodeId src = 0; src < n; ++src) {
    std::vector<std::size_t> dist(n, std::numeric_limits<std::size_t>::max());
    std::vector<std::ptrdiff_t> first_port(n, -1);
    std::deque<NodeId> frontier;
    dist[src] = 0;
    frontier.push_back(src);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, port] : adjacency[u]) {
        if (dist[v] != std::numeric_limits<std::size_t>::max()) continue;
        dist[v] = dist[u] + 1;
        first_port[v] = u == src ? static_cast<std::ptrdiff_t>(port)
                                 : first_port[u];
        frontier.push_back(v);
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst != src && first_port[dst] >= 0) {
        nodes[src]->set_next_hop(dst,
                                 static_cast<std::size_t>(first_port[dst]));
      }
    }
  }
}

}  // namespace

Node& Topology::add_node(const std::string& name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(sim_, id, name));
  nodes_.back()->set_stats_fold(node_stats_);
  adjacency_.emplace_back();
  return *nodes_.back();
}

Link* Topology::make_link(Node& from, Node& to, const LinkSpec& spec) {
  std::string name = spec.name.empty()
                         ? from.name() + "->" + to.name()
                         : spec.name;
  // Per-link queue seed derived from the scenario seed: RED instances in
  // different sweep cells (and on different links of one topology) must
  // not share one drop lottery. The link index salts duplicate names.
  const std::uint64_t queue_seed = RandomStream::derive_seed(
      sim_.seed(), "queue/" + std::to_string(links_.size()) + "/" + name);
  auto queue = make_queue(spec.queue, spec.buffer_packets, queue_seed);
  queue->set_ecn_marking(spec.ecn);
  links_.push_back(std::make_unique<Link>(sim_, std::move(name), spec.rate_bps,
                                          spec.delay, std::move(queue)));
  Link* link = links_.back().get();
  Node* dest = &to;
  link->set_sink([dest](Packet&& p) { dest->receive(std::move(p)); });
  const std::size_t port = from.add_port(link);
  adjacency_[from.id()].emplace_back(to.id(), port);
  return link;
}

Topology::LinkPair Topology::connect(Node& a, Node& b, LinkSpec a_to_b,
                                     LinkSpec b_to_a) {
  LinkPair pair;
  pair.forward = make_link(a, b, a_to_b);
  pair.backward = make_link(b, a, b_to_a);
  return pair;
}

Node::Stats Topology::node_stats() const {
  Node::Stats total;
  for (const auto& node : nodes_) total += node->stats();
  return total;
}

void Topology::compute_routes() {
  // BFS from every destination over reversed edges would be cheaper, but n
  // is tiny (testbeds have ~12 nodes); BFS from every source is clearer.
  bfs_routes(adjacency_, nodes_);
}

// ---------------------------------------------------------------------------
// ShardedTopology

ShardedTopology::ShardedTopology(const ShardedTopologySpec& spec,
                                 const std::vector<std::uint32_t>& shard_of,
                                 std::vector<Simulation*> sims,
                                 Node::StatsFold* node_stats)
    : sims_(std::move(sims)),
      shard_of_(shard_of),
      node_stats_(node_stats) {
  if (shard_of_.size() != spec.node_names.size()) {
    throw std::invalid_argument("ShardedTopology: shard_of size mismatch");
  }
  for (const std::uint32_t s : shard_of_) {
    if (s >= sims_.size()) {
      throw std::invalid_argument("ShardedTopology: shard id out of range");
    }
  }

  // Nodes, in declaration order: global ids, per-shard Simulations. The
  // per-scheduler construction-time sequence allocations that follow
  // (flow binds, app timers) then happen in one global order regardless
  // of the shard count.
  nodes_.reserve(spec.node_names.size());
  adjacency_.resize(spec.node_names.size());
  for (std::size_t i = 0; i < spec.node_names.size(); ++i) {
    nodes_.push_back(std::make_unique<Node>(*sims_[shard_of_[i]],
                                            static_cast<NodeId>(i),
                                            spec.node_names[i]));
    nodes_.back()->set_stats_fold(node_stats_);
  }

  inbound_.resize(sims_.size());
  for (const ShardedTopologySpec::Decl& d : spec.decls) {
    if (d.a >= nodes_.size() || d.b >= nodes_.size()) {
      throw std::invalid_argument("ShardedTopology: decl endpoint unknown");
    }
    // Mailbox discipline is a property of the declaration's delays alone
    // (both directions must clear the floor), exactly mirroring the
    // partitioner's crossing-eligibility rule -- never of whether this
    // particular assignment separates the endpoints. That keeps the event
    // schedule invariant across shard counts.
    const Time min_delay = std::min(d.ab.delay, d.ba.delay);
    const bool mailboxed = min_delay >= spec.lookahead_floor;
    if (!mailboxed && shard_of_[d.a] != shard_of_[d.b]) {
      throw std::invalid_argument(
          "ShardedTopology: short link crosses a shard boundary (partition "
          "bug or hand-rolled shard_of)");
    }
    const struct {
      NodeId from, to;
      const LinkSpec* spec;
    } dirs[2] = {{d.a, d.b, &d.ab}, {d.b, d.a, &d.ba}};
    for (const auto& dir : dirs) {
      Link* link = make_link(*nodes_[dir.from], *nodes_[dir.to], *dir.spec);
      if (!mailboxed) continue;
      Crossing crossing;
      crossing.outbox = std::make_unique<ShardMailbox>();
      crossing.inbox = std::make_unique<MailboxInbox>(
          *sims_[shard_of_[dir.to]], *nodes_[dir.to]);
      crossing.src_shard = shard_of_[dir.from];
      crossing.dst_shard = shard_of_[dir.to];
      crossing.link = link;
      link->set_mailbox(crossing.outbox.get());
      inbound_[crossing.dst_shard].push_back(
          static_cast<std::uint32_t>(crossings_.size()));
      crossings_.push_back(std::move(crossing));
    }
  }
}

Link* ShardedTopology::make_link(Node& from, Node& to, const LinkSpec& spec) {
  std::string name =
      spec.name.empty() ? from.name() + "->" + to.name() : spec.name;
  // Same per-link queue-seed derivation as Topology::make_link, keyed on
  // the *global* link index, so a RED lottery on link k draws the same
  // stream at every shard count. All shard sims share the master seed.
  Simulation& sim = from.sim();
  const std::uint64_t queue_seed = RandomStream::derive_seed(
      sim.seed(), "queue/" + std::to_string(links_.size()) + "/" + name);
  auto queue = make_queue(spec.queue, spec.buffer_packets, queue_seed);
  queue->set_ecn_marking(spec.ecn);
  links_.push_back(std::make_unique<Link>(sim, std::move(name), spec.rate_bps,
                                          spec.delay, std::move(queue)));
  Link* link = links_.back().get();
  Node* dest = &to;
  link->set_sink([dest](Packet&& p) { dest->receive(std::move(p)); });
  const std::size_t port = from.add_port(link);
  adjacency_[from.id()].emplace_back(to.id(), port);
  return link;
}

Node::Stats ShardedTopology::node_stats() const {
  Node::Stats total;
  for (const auto& node : nodes_) total += node->stats();
  return total;
}

void ShardedTopology::compute_routes() { bfs_routes(adjacency_, nodes_); }

}  // namespace qoesim::net
