// qoesim -- two-class strict priority queue (QoS isolation).
//
// The paper's recommendation for VoIP (§7.4): "we advocate to use QoS
// mechanisms to isolate VoIP traffic from the other traffic. This is
// already common for ISP internal services". This discipline models that
// deployment: real-time (UDP) packets are served strictly before elastic
// (TCP) traffic, each class with its own drop-tail space, so bulk
// transfers can no longer build queueing delay in front of voice.
#pragma once

#include <deque>

#include "net/queue.hpp"

namespace qoesim::net {

struct PriorityParams {
  /// Share of the buffer reserved for the high-priority (real-time)
  /// class, clamped to [0, 1]. Voice needs little (it should never queue
  /// for long). The high band gets ceil(share * capacity) slots and the
  /// low band the remainder, so the two always sum to the configured
  /// capacity.
  double high_priority_share = 0.25;
};

class PriorityQueue final : public QueueDiscipline {
 public:
  explicit PriorityQueue(std::size_t capacity_packets,
                         PriorityParams params = {});

  std::size_t packet_count() const override {
    return high_.size() + low_.size();
  }
  std::size_t byte_count() const override { return bytes_; }
  std::string name() const override { return "Priority"; }

  std::size_t high_count() const { return high_.size(); }
  std::size_t low_count() const { return low_.size(); }
  std::size_t high_capacity() const { return high_capacity_; }
  std::size_t low_capacity() const { return low_capacity_; }
  std::uint64_t high_drops() const { return high_drops_; }
  std::uint64_t low_drops() const { return low_drops_; }

  /// Classifier: what counts as real-time traffic. Default: UDP.
  static bool is_high_priority(const Packet& p) {
    return p.proto == Protocol::kUdp;
  }

 protected:
  bool do_enqueue(Packet&& p, Time now) override;
  std::optional<Packet> do_dequeue(Time now) override;

 private:
  std::size_t high_capacity_;
  std::size_t low_capacity_;
  std::deque<Packet> high_;
  std::deque<Packet> low_;
  std::size_t bytes_ = 0;
  std::uint64_t high_drops_ = 0;
  std::uint64_t low_drops_ = 0;
};

}  // namespace qoesim::net
