#include "net/tracer.hpp"

namespace qoesim::net {

const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kEnqueue: return "enqueue";
    case TraceEvent::kDrop: return "drop";
    case TraceEvent::kTransmit: return "transmit";
    case TraceEvent::kMark: return "mark";
    case TraceEvent::kDeliver: return "deliver";
  }
  return "?";
}

namespace {

TraceRecord from_packet(const Packet& p, Time now, TraceEvent e,
                        std::string point) {
  TraceRecord r;
  r.at = now;
  r.event = e;
  r.point = std::move(point);
  r.packet_uid = p.uid;
  r.proto = p.proto;
  r.src = p.src;
  r.dst = p.dst;
  r.size_bytes = p.size_bytes;
  r.seq = p.proto == Protocol::kTcp ? p.tcp.seq : p.app.seq;
  r.app = p.app.kind;
  return r;
}

}  // namespace

void PacketTracer::observe_link(Link& link) {
  const std::string point = link.name();
  link.add_tx_observer([this, point](const Packet& p, Time now) {
    record(from_packet(p, now, TraceEvent::kTransmit, point));
  });
}

void PacketTracer::record(const TraceRecord& r) {
  if (records_.size() >= capacity_) {
    ++overflow_;
    return;
  }
  records_.push_back(r);
}

void PacketTracer::write_csv(std::ostream& out) const {
  out << "time_s,event,point,uid,proto,src,dst,size,seq,app\n";
  for (const auto& r : records_) {
    out << r.at.sec() << ',' << to_string(r.event) << ',' << r.point << ','
        << r.packet_uid << ','
        << (r.proto == Protocol::kTcp ? "tcp" : "udp") << ',' << r.src << ','
        << r.dst << ',' << r.size_bytes << ',' << r.seq << ','
        << static_cast<int>(r.app) << '\n';
  }
}

std::size_t PacketTracer::count(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (pred(r)) ++n;
  }
  return n;
}

TracingQueue::TracingQueue(std::unique_ptr<QueueDiscipline> inner,
                           PacketTracer& tracer, std::string point)
    : QueueDiscipline(inner->capacity_packets()),
      inner_(std::move(inner)),
      tracer_(tracer),
      point_(std::move(point)) {}

TraceRecord TracingQueue::make_record(const Packet& p, Time now,
                                      TraceEvent e) const {
  return from_packet(p, now, e, point_);
}

bool TracingQueue::do_enqueue(Packet&& p, Time now) {
  // Record before handing over (the inner queue may consume the packet).
  TraceRecord pending = make_record(p, now, TraceEvent::kEnqueue);
  const std::uint64_t marks_before = inner_->stats().marked;
  const bool accepted = inner_->enqueue(std::move(p), now);
  if (accepted) {
    tracer_.record(pending);
    // An admission that bumped the inner mark counter was an ECN CE mark
    // applied in place of an early drop (RED marks at enqueue).
    if (inner_->stats().marked > marks_before) {
      pending.event = TraceEvent::kMark;
      tracer_.record(pending);
      stats_.marked += inner_->stats().marked - marks_before;
    }
  } else {
    pending.event = TraceEvent::kDrop;
    tracer_.record(pending);
    // Mirror the inner drop into our own stats block.
    stats_.dropped += 1;
    stats_.bytes_dropped += pending.size_bytes;
  }
  return accepted;
}

std::optional<Packet> TracingQueue::do_dequeue(Time now) {
  const QueueStats& is = inner_->stats();
  const std::uint64_t marks_before = is.marked;
  const std::uint64_t drops_before = is.dropped;
  const std::uint64_t drop_bytes_before = is.bytes_dropped;
  auto p = inner_->dequeue(now);
  // CoDel marks at dequeue: the delivered head carries the fresh CE mark.
  if (p && is.marked > marks_before) {
    tracer_.record(make_record(*p, now, TraceEvent::kMark));
    stats_.marked += is.marked - marks_before;
  }
  // Mirror dequeue-time AQM drops (CoDel head drops) into the wrapper's
  // stats block like the enqueue-time ones above. The dropped packets were
  // consumed inside the inner discipline, so no per-packet kDrop trace
  // record can be emitted for them -- only the counters survive.
  if (is.dropped > drops_before) {
    stats_.dropped += is.dropped - drops_before;
    stats_.bytes_dropped += is.bytes_dropped - drop_bytes_before;
  }
  return p;
}

}  // namespace qoesim::net
