// qoesim -- binary trace converters: pcap export and text dump.
//
// pcap: classic nanosecond-resolution pcap (magic 0xa1b23c4d, LINKTYPE_RAW)
// with synthesized IPv4 + TCP/UDP headers, so bench traces open directly in
// Wireshark/tcpdump. The simulator models payload as byte counts only, so
// captured frames are header-only: incl_len covers the synthesized headers,
// orig_len reports the true wire size. Node ids map to 10.x.x.x addresses;
// 64-bit sequence numbers truncate to the 32-bit header fields.
//
// text: one line per record, fixed field order -- the diffable form the
// determinism gate and the golden-file tests compare.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/trace_binary.hpp"

namespace qoesim::net {

/// Which trace events become pcap packets. Transmit-only is the default:
/// a tx+deliver trace would show every packet twice (once per interface).
struct PcapOptions {
  bool transmit = true;
  bool deliver = false;
  bool include(TraceEvent e) const {
    return (e == TraceEvent::kTransmit && transmit) ||
           (e == TraceEvent::kDeliver && deliver);
  }
};

/// Write `records` as a pcap stream; returns packets written.
std::size_t write_pcap(const std::vector<BinRecord>& records,
                       std::ostream& out, PcapOptions opts = {});

/// Write `records` as the diff-friendly text dump, one line per record.
void write_trace_text(const std::vector<BinRecord>& records,
                      std::ostream& out);

}  // namespace qoesim::net
