// qoesim -- in-flight packet slab pool and wire ring.
//
// PacketPool holds the packets a link currently has "in flight" (one being
// serialized plus any riding the propagation delay). Slots are recycled
// through a free list, mirroring the scheduler's event arena: steady-state
// forwarding performs zero heap allocations per packet, because a slot and
// the scheduler events referencing it (by 4-byte SlotId, well inside
// SmallCallback's inline buffer) are reused as soon as the packet is
// delivered. The slab only grows when more packets are simultaneously in
// flight than ever before on this link, which is bounded by
// 1 + ceil(prop_delay / serialization_time) -- growth events are counted
// in Stats::slab_growths so tests can assert the steady state allocates
// nothing.
//
// WireRing is the companion FIFO of (slot, deliver_at) entries for packets
// that finished serialization and are propagating. Because a link's
// propagation delay is constant and serialization completions are ordered,
// deliver_at is non-decreasing, so one delivery event draining the ring
// front replaces a scheduler event per packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/annotations.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace qoesim::net {

/// Shard-plane: a pool belongs to one Link and is only touched from the
/// owning shard's event loop; the mutating operations require the shard
/// capability (Link's entry points assert it; see core/annotations.hpp).
class QOESIM_SHARD_PLANE PacketPool {
 public:
  using SlotId = std::uint32_t;
  static constexpr SlotId kNil = 0xffffffffu;

  struct Stats {
    std::uint64_t acquired = 0;
    std::uint64_t released = 0;
    /// Number of times a new slot had to be created (the only operation
    /// that can touch the heap). Constant in steady state.
    std::uint64_t slab_growths = 0;
    std::uint64_t peak_in_flight = 0;
  };

  /// Store `p` in a pooled slot; reuses a free slot when available.
  SlotId acquire(Packet&& p) QOESIM_REQUIRES_SHARD;

  /// Move the packet out of `slot` and return the slot to the free list.
  Packet release(SlotId slot) QOESIM_REQUIRES_SHARD;

  /// References returned here stay valid across acquire()/release(): the
  /// slab is a deque, so growth never relocates existing slots. A Link
  /// iterates its tx observers over such a reference while an observer
  /// could reenter Link::send (and thus acquire()).
  Packet& at(SlotId slot) QOESIM_REQUIRES_SHARD { return slots_[slot]; }
  const Packet& at(SlotId slot) const QOESIM_REQUIRES_SHARD {
    return slots_[slot];
  }

  std::size_t in_flight() const {
    return static_cast<std::size_t>(stats_.acquired - stats_.released);
  }
  std::size_t slot_count() const { return slots_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::deque<Packet> slots_;  // reference-stable slab (see at())
  std::vector<SlotId> free_;  // stack of recycled slot ids
  Stats stats_;
};

/// FIFO ring buffer of packets on the wire. Capacity grows by doubling
/// (never shrinks), so like the pool it stops allocating once the link has
/// seen its peak in-flight population. Shard-plane like the pool: mutation
/// requires the shard capability, const inspection does not.
class QOESIM_SHARD_PLANE WireRing {
 public:
  struct Entry {
    PacketPool::SlotId slot = PacketPool::kNil;
    /// FIFO position reserved (Scheduler::allocate_seq) when the packet
    /// finished serialization: the delivery event fires with this seq, so
    /// same-timestamp ties resolve exactly as if the packet had scheduled
    /// its own propagation event there.
    std::uint64_t seq = 0;
    Time deliver_at;
  };

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  const Entry& front() const { return buf_[head_]; }

  void push(Entry e) QOESIM_REQUIRES_SHARD;
  void pop() QOESIM_REQUIRES_SHARD;

 private:
  std::vector<Entry> buf_;  // power-of-two capacity circular buffer
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace qoesim::net
