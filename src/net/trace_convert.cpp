#include "net/trace_convert.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace qoesim::net {

namespace {

// ---- pcap (little-endian host headers, big-endian network payload) ----

constexpr std::uint32_t kPcapMagicNs = 0xa1b23c4du;
constexpr std::uint32_t kLinkTypeRaw = 101;  // LINKTYPE_RAW: bare IPv4
constexpr std::size_t kIpHdr = 20;
constexpr std::size_t kTcpHdr = 20;
constexpr std::size_t kUdpHdr = 8;

void put16le(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put32le(std::uint8_t* out, std::uint32_t v) {
  put16le(out, static_cast<std::uint16_t>(v));
  put16le(out + 2, static_cast<std::uint16_t>(v >> 16));
}

void put16be(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 8);
  out[1] = static_cast<std::uint8_t>(v);
}

void put32be(std::uint8_t* out, std::uint32_t v) {
  put16be(out, static_cast<std::uint16_t>(v >> 16));
  put16be(out + 2, static_cast<std::uint16_t>(v));
}

/// RFC 791 header checksum over `len` bytes (len even).
std::uint16_t ip_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8) | data[i + 1];
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

/// Node id -> 10.0.x.y (network byte order in the header).
std::uint32_t node_ip(std::uint32_t id) {
  return 0x0a000000u | (id & 0xffffu);
}

std::size_t frame_bytes(const BinRecord& r) {
  return kIpHdr + (r.proto == Protocol::kTcp ? kTcpHdr : kUdpHdr);
}

void encode_frame(const BinRecord& r, std::uint8_t* out) {
  const std::size_t total = frame_bytes(r);
  // IPv4: the simulated wire size is the datagram total length; captured
  // bytes stop after the transport header (payload is never materialized).
  out[0] = 0x45;
  out[1] = static_cast<std::uint8_t>(r.ecn);  // DSCP 0 + ECN codepoint
  put16be(out + 2, static_cast<std::uint16_t>(
                       std::min<std::uint32_t>(r.wire_bytes, 0xffff)));
  put16be(out + 4, static_cast<std::uint16_t>(r.uid));  // id: uid low bits
  put16be(out + 6, 0x4000);                             // DF, no fragments
  out[8] = 64;                                          // TTL
  out[9] = r.proto == Protocol::kTcp ? 6 : 17;
  put16be(out + 10, 0);  // checksum patched below
  put32be(out + 12, node_ip(r.src));
  put32be(out + 16, node_ip(r.dst));
  put16be(out + 10, ip_checksum(out, kIpHdr));

  std::uint8_t* th = out + kIpHdr;
  if (r.proto == Protocol::kTcp) {
    put16be(th + 0, r.src_port);
    put16be(th + 2, r.dst_port);
    put32be(th + 4, static_cast<std::uint32_t>(r.seq));
    put32be(th + 8, static_cast<std::uint32_t>(r.ack));
    th[12] = 0x50;  // data offset 5 words
    std::uint8_t flags = 0;
    if (r.fin) flags |= 0x01;
    if (r.syn) flags |= 0x02;
    if (r.has_ack) flags |= 0x10;
    if (r.ece) flags |= 0x40;
    if (r.cwr) flags |= 0x80;
    th[13] = flags;
    put16be(th + 14, 0xffff);  // window
    put16be(th + 16, 0);       // checksum (payload bytes not modelled)
    put16be(th + 18, 0);       // urgent
  } else {
    put16be(th + 0, r.src_port);
    put16be(th + 2, r.dst_port);
    put16be(th + 4, static_cast<std::uint16_t>(std::min<std::uint32_t>(
                        kUdpHdr + r.payload, 0xffff)));
    put16be(th + 6, 0);
  }
  (void)total;
}

}  // namespace

std::size_t write_pcap(const std::vector<BinRecord>& records,
                       std::ostream& out, PcapOptions opts) {
  std::uint8_t gh[24] = {};
  put32le(gh + 0, kPcapMagicNs);
  put16le(gh + 4, 2);   // version 2.4
  put16le(gh + 6, 4);
  put32le(gh + 8, 0);   // thiszone
  put32le(gh + 12, 0);  // sigfigs
  put32le(gh + 16, 65535);
  put32le(gh + 20, kLinkTypeRaw);
  out.write(reinterpret_cast<const char*>(gh), sizeof(gh));

  std::size_t written = 0;
  for (const auto& r : records) {
    if (!opts.include(r.event)) continue;
    const std::size_t frame = frame_bytes(r);
    std::uint8_t ph[16];
    put32le(ph + 0, static_cast<std::uint32_t>(r.t_ns / 1000000000));
    put32le(ph + 4, static_cast<std::uint32_t>(r.t_ns % 1000000000));
    put32le(ph + 8, static_cast<std::uint32_t>(frame));
    put32le(ph + 12, std::max<std::uint32_t>(r.wire_bytes,
                                             static_cast<std::uint32_t>(frame)));
    out.write(reinterpret_cast<const char*>(ph), sizeof(ph));
    std::uint8_t buf[kIpHdr + kTcpHdr];
    encode_frame(r, buf);
    out.write(reinterpret_cast<const char*>(buf),
              static_cast<std::streamsize>(frame));
    ++written;
  }
  return written;
}

void write_trace_text(const std::vector<BinRecord>& records,
                      std::ostream& out) {
  const char* event_names[] = {"enqueue", "drop", "tx", "mark", "deliver"};
  const char* ecn_names[] = {"notect", "ect1", "ect0", "ce"};
  char line[256];
  for (const auto& r : records) {
    const auto ev = static_cast<std::size_t>(r.event);
    char flags[6] = "-----";
    if (r.syn) flags[0] = 'S';
    if (r.has_ack) flags[1] = 'A';
    if (r.fin) flags[2] = 'F';
    if (r.ece) flags[3] = 'E';
    if (r.cwr) flags[4] = 'W';
    std::snprintf(
        line, sizeof(line),
        "%" PRId64 ".%09" PRId64
        " point=%u %s %s uid=%" PRIu64 " flow=%" PRIu64
        " n%u:%u>n%u:%u seq=%" PRIu64 " ack=%" PRIu64
        " len=%u wire=%u flags=%s ecn=%s",
        r.t_ns / 1000000000, r.t_ns % 1000000000, r.point,
        ev < 5 ? event_names[ev] : "?",
        r.proto == Protocol::kTcp ? "tcp" : "udp", r.uid, r.flow, r.src,
        r.src_port, r.dst, r.dst_port, r.seq, r.ack, r.payload, r.wire_bytes,
        flags, static_cast<std::size_t>(r.ecn) < 4
                   ? ecn_names[static_cast<std::size_t>(r.ecn)]
                   : "?");
    out << line << '\n';
  }
}

}  // namespace qoesim::net
