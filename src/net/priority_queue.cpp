#include "net/priority_queue.hpp"

#include "sim/annotations.hpp"

#include <algorithm>
#include <cmath>

namespace qoesim::net {

PriorityQueue::PriorityQueue(std::size_t capacity_packets,
                             PriorityParams params)
    : QueueDiscipline(capacity_packets) {
  // The two bands partition the configured buffer exactly: the paper
  // sweeps total buffer size, so granting the low band a bonus slot (as a
  // max(1, ...) floor used to) would simulate a bigger buffer than
  // configured. A share of 0 (or a 1-packet buffer at full share) leaves
  // one band empty and that class drops everything, which is the faithful
  // reading of the configuration.
  const double share =
      std::clamp(params.high_priority_share, 0.0, 1.0);
  high_capacity_ = std::min(
      capacity_packets,
      static_cast<std::size_t>(
          std::ceil(static_cast<double>(capacity_packets) * share)));
  low_capacity_ = capacity_packets - high_capacity_;
}

QOESIM_HOT bool PriorityQueue::do_enqueue(Packet&& p, Time /*now*/) {
  if (is_high_priority(p)) {
    if (high_.size() >= high_capacity_) {
      ++high_drops_;
      count_drop(p);
      return false;
    }
    bytes_ += p.size_bytes;
    // qoesim-lint: allow(hot-alloc) -- high_capacity_-bounded deque; blocks recycled in steady state
    high_.push_back(std::move(p));
    return true;
  }
  if (low_.size() >= low_capacity_) {
    ++low_drops_;
    count_drop(p);
    return false;
  }
  bytes_ += p.size_bytes;
  // qoesim-lint: allow(hot-alloc) -- low_capacity_-bounded deque; blocks recycled in steady state
  low_.push_back(std::move(p));
  return true;
}

QOESIM_HOT std::optional<Packet> PriorityQueue::do_dequeue(Time /*now*/) {
  std::deque<Packet>* source = nullptr;
  if (!high_.empty()) {
    source = &high_;
  } else if (!low_.empty()) {
    source = &low_;
  } else {
    return std::nullopt;
  }
  Packet p = std::move(source->front());
  source->pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

}  // namespace qoesim::net
