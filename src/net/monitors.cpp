#include "net/monitors.hpp"

namespace qoesim::net {

LinkMonitor::LinkMonitor(Link& link, Time bin_width)
    : link_(link), bytes_per_bin_(bin_width) {
  link_.add_tx_observer([this](const Packet& p, Time now) {
    ++tx_packets_;
    tx_bytes_ += p.size_bytes;
    bytes_per_bin_.add(now, static_cast<double>(p.size_bytes));
  });
}

stats::Samples LinkMonitor::utilization(Time from, Time to) const {
  stats::Samples out;
  const double bin_capacity_bytes =
      link_.rate_bps() * bytes_per_bin_.bin_width().sec() / 8.0;
  for (double bytes : bytes_per_bin_.bin_values(from, to)) {
    out.add(bytes / bin_capacity_bytes);
  }
  return out;
}

double LinkMonitor::mean_utilization(Time from, Time to) const {
  auto u = utilization(from, to);
  return u.empty() ? 0.0 : u.mean();
}

}  // namespace qoesim::net
