#include "net/codel.hpp"

#include "sim/annotations.hpp"

#include <cmath>

namespace qoesim::net {

CoDelQueue::CoDelQueue(std::size_t capacity_packets, CoDelParams params)
    : QueueDiscipline(capacity_packets), params_(params) {}

QOESIM_HOT bool CoDelQueue::do_enqueue(Packet&& p, Time /*now*/) {
  if (q_.size() >= capacity_) {
    count_drop(p);
    return false;
  }
  bytes_ += p.size_bytes;
  // qoesim-lint: allow(hot-alloc) -- capacity_-bounded deque; blocks recycled in steady state
  q_.push_back(std::move(p));
  return true;
}

Time CoDelQueue::control_law(Time t) const {
  // drop_count_ is >= 1 whenever the dropping state is active; the guard
  // keeps a stray call at 0 from dividing by sqrt(0).
  const double count = drop_count_ == 0 ? 1.0 : static_cast<double>(drop_count_);
  return t + params_.interval / std::sqrt(count);
}

std::optional<Packet> CoDelQueue::pop_head(Time now, bool& ok_sojourn) {
  if (q_.empty()) {
    first_above_time_ = Time::zero();
    ok_sojourn = true;
    return std::nullopt;
  }
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;

  const Time sojourn = now - p.enqueued_at;
  if (sojourn < params_.target || bytes_ <= kMtuBytes) {
    first_above_time_ = Time::zero();
    ok_sojourn = true;
  } else {
    if (first_above_time_.is_zero()) {
      first_above_time_ = now + params_.interval;
      ok_sojourn = true;
    } else {
      ok_sojourn = now < first_above_time_;
    }
  }
  return p;
}

QOESIM_HOT std::optional<Packet> CoDelQueue::do_dequeue(Time now) {
  bool ok = true;
  auto p = pop_head(now, ok);
  if (!p) {
    dropping_ = false;
    return std::nullopt;
  }

  if (dropping_) {
    if (ok) {
      dropping_ = false;
    } else {
      while (now >= drop_next_ && dropping_) {
        // RFC 8289 §4.2: with ECN, CE-mark the packet the control law
        // would drop and deliver it; the dropping state and its schedule
        // advance exactly as if it had been dropped.
        if (can_mark(*p)) {
          apply_mark(*p);
          ++drop_count_;
          drop_next_ = control_law(drop_next_);
          return p;
        }
        count_drop(*p);
        ++drop_count_;
        p = pop_head(now, ok);
        if (!p) {
          dropping_ = false;
          return std::nullopt;
        }
        if (ok) {
          dropping_ = false;
        } else {
          drop_next_ = control_law(drop_next_);
        }
      }
    }
  } else if (!ok) {
    // Sojourn has been above target for a full interval: enter dropping
    // state, drop (or CE-mark) this packet, and deliver the next (the
    // marked packet itself when marking).
    const bool mark = can_mark(*p);
    if (mark) {
      apply_mark(*p);
    } else {
      count_drop(*p);
    }
    dropping_ = true;
    // RFC 8289 §4.3 hysteresis: on a quick re-entry (less than 16
    // intervals since the last scheduled drop) resume from the drop rate
    // in effect when the previous dropping state ended -- count picks up
    // at the number of drops that state added (count - lastcount) --
    // otherwise restart from 1.
    const std::uint32_t delta = drop_count_ - last_drop_count_;
    if (delta > 1 && now - drop_next_ < params_.interval * 16.0) {
      drop_count_ = delta;
    } else {
      drop_count_ = 1;
    }
    drop_next_ = control_law(now);
    last_drop_count_ = drop_count_;
    if (mark) return p;  // the marked head is delivered, not replaced
    bool ok2 = true;
    p = pop_head(now, ok2);
    if (!p) {
      dropping_ = false;
      return std::nullopt;
    }
  }
  return p;
}

}  // namespace qoesim::net
