// qoesim -- cross-shard packet mailboxes for the conservative-PDES engine.
//
// A link whose propagation delay clears the engine's lookahead floor uses
// mailbox delivery instead of the in-scheduler WireRing: the tx side
// (producer shard) appends timestamped records into a ShardMailbox during
// its epoch, and at every barrier the destination shard drains all of its
// inbound mailboxes in one seq-ordered merge, admitting each record into
// the per-link MailboxInbox ring that materializes delivery events with
// the exact same (when, seq) tie-breaking as schedule_at_seq.
//
// The ShardMailbox is deliberately dumb: a vector of value-type records
// and a FIFO counter, no locks, no atomics. The producer writes only
// during its epoch; the consumer reads only between the two barrier
// phases, when the producer is quiescent -- the barrier provides the
// happens-before edge, so the channel itself needs no synchronization
// (and qoesim_lint's shard-state check flags any that sneaks in).
//
// Determinism contract (see README "sharding contract"): mailbox
// discipline is decided by link delay alone (delay >= lookahead floor),
// never by whether the link currently crosses a shard boundary, so the
// event schedule -- and therefore figure output -- is byte-identical at
// every --shards count, including 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/annotations.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace qoesim::net {

class Node;

/// One packet in cross-shard transit. `channel` is the global crossing
/// index of the mailbox it traveled through and `link_seq` its FIFO
/// position on that mailbox; together with deliver_at they form the merge
/// key (deliver_at, channel, link_seq) the barrier drain sorts by, which
/// is partition-invariant (both components depend only on the topology's
/// construction order and per-link tx order).
struct MailboxRecord {
  Time deliver_at;
  std::uint64_t channel = 0;
  std::uint64_t link_seq = 0;
  Packet packet;
};

/// SPSC batch buffer from one link's tx side to its destination shard.
/// push() runs inside the producer shard's epoch; drain_into() runs at a
/// barrier on the consumer shard, with the producer quiescent.
class QOESIM_CROSS_SHARD_CHANNEL ShardMailbox {
 public:
  ShardMailbox() = default;
  ShardMailbox(const ShardMailbox&) = delete;
  ShardMailbox& operator=(const ShardMailbox&) = delete;

  /// Producer side (link tx-complete): append one record. The per-mailbox
  /// FIFO counter preserves the link's transmission order across drains.
  void push(Time deliver_at, Packet&& p) {
    // qoesim-lint: allow(hot-alloc) -- drain_into clears without shrinking, so the batch reaches high-water capacity in warmup and steady-state pushes allocate nothing (same policy as WireRing)
    batch_.push_back(
        MailboxRecord{deliver_at, 0, next_link_seq_++, std::move(p)});
  }

  /// Consumer side (barrier drain): move every batched record into `out`,
  /// tagging each with this mailbox's global crossing index.
  void drain_into(std::vector<MailboxRecord>& out, std::uint64_t channel) {
    for (MailboxRecord& r : batch_) {
      r.channel = channel;
      out.push_back(std::move(r));
    }
    batch_.clear();  // keeps capacity; steady state allocates nothing
  }

  bool empty() const { return batch_.empty(); }
  std::size_t size() const { return batch_.size(); }

 private:
  std::vector<MailboxRecord> batch_;
  std::uint64_t next_link_seq_ = 0;
};

/// Receive-side ring of one mailbox link, owned by the destination shard.
/// Admitted records wait here with their reserved sequence numbers; like
/// the WireRing, one armed delivery event per link suffices because
/// records are admitted in merge order (non-decreasing (when, seq) per
/// link), and each delivery re-arms the next entry at its own reserved
/// seq, so every packet keeps its exact FIFO position among
/// same-timestamp events.
class QOESIM_SHARD_PLANE MailboxInbox {
 public:
  MailboxInbox(Simulation& sim, Node& dest) : sim_(sim), dest_(dest) {}
  MailboxInbox(const MailboxInbox&) = delete;
  MailboxInbox& operator=(const MailboxInbox&) = delete;

  /// Admit one drained record under the destination shard's epoch. `seq`
  /// must come from this shard's Scheduler::allocate_seq(), taken in
  /// merge order; `when` must be >= the scheduler's clock (guaranteed by
  /// the lookahead: deliver_at >= tx epoch start + quantum = barrier
  /// time).
  void admit(Time when, std::uint64_t seq, Packet&& p) QOESIM_REQUIRES_SHARD;

  /// Records admitted but not yet delivered.
  std::size_t depth() const { return size_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq = 0;
    Packet packet;
  };

  void arm(Time when, std::uint64_t seq) QOESIM_REQUIRES_SHARD;
  void deliver_front() QOESIM_REQUIRES_SHARD;

  Simulation& sim_;
  Node& dest_;
  std::vector<Entry> buf_;  // power-of-two ring, grown geometrically
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace qoesim::net
