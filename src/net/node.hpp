// qoesim -- network node: forwarding plane plus transport demux.
//
// A Node is both a router (static next-hop forwarding by destination) and a
// host endpoint (packets addressed to the node are delivered to a bound
// transport handler). The demux is connection-oriented: exact 4-tuple
// bindings win over wildcard listeners on (protocol, local port) -- the
// same lookup a kernel performs, which lets TcpServer accept new flows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace qoesim::net {

class Node {
 public:
  using Handler = std::function<void(Packet&&)>;

  Node(Simulation& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulation& sim() { return sim_; }

  /// Attach an outgoing link; returns the port index.
  std::size_t add_port(Link* out);
  std::size_t port_count() const { return ports_.size(); }
  Link* port_link(std::size_t port) const { return ports_.at(port); }

  /// Static routing: packets for `dst` leave through `port`.
  void set_next_hop(NodeId dst, std::size_t port);
  /// Fallback port when no specific route exists (hosts' default route).
  void set_default_route(std::size_t port);

  /// Entry point for packets arriving from links.
  void receive(Packet&& p);

  /// Send a packet originated by (or forwarded through) this node.
  void send(Packet&& p);

  // ---- transport demux ----------------------------------------------------

  /// Bind an exact connection (proto, local port, remote node, remote port).
  void bind_connection(Protocol proto, std::uint32_t local_port, NodeId remote,
                       std::uint32_t remote_port, Handler h);
  void unbind_connection(Protocol proto, std::uint32_t local_port,
                         NodeId remote, std::uint32_t remote_port);

  /// Bind a wildcard listener on (proto, local port).
  void bind_listener(Protocol proto, std::uint32_t local_port, Handler h);
  void unbind_listener(Protocol proto, std::uint32_t local_port);

  /// Allocate an ephemeral port, unique per node.
  std::uint32_t allocate_port() { return next_ephemeral_++; }

  /// Packets that arrived addressed to this node with no bound handler.
  std::uint64_t undelivered() const { return undelivered_; }
  /// Packets dropped because no route existed.
  std::uint64_t unrouted() const { return unrouted_; }

 private:
  struct ConnKey {
    std::uint8_t proto;
    std::uint32_t local_port;
    NodeId remote;
    std::uint32_t remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  void deliver_local(Packet&& p);

  Simulation& sim_;
  NodeId id_;
  std::string name_;
  std::vector<Link*> ports_;
  std::map<NodeId, std::size_t> routes_;
  std::ptrdiff_t default_route_ = -1;

  std::map<ConnKey, Handler> connections_;
  std::map<std::pair<std::uint8_t, std::uint32_t>, Handler> listeners_;
  std::uint32_t next_ephemeral_ = 49152;
  std::uint64_t undelivered_ = 0;
  std::uint64_t unrouted_ = 0;
};

}  // namespace qoesim::net
