// qoesim -- network node: forwarding plane plus transport demux.
//
// A Node is both a router (static next-hop forwarding by destination) and a
// host endpoint (packets addressed to the node are delivered to a bound
// transport handler). The demux is connection-oriented: exact 4-tuple
// bindings win over wildcard listeners on (protocol, local port) -- the
// same lookup a kernel performs, which lets TcpServer accept new flows.
//
// Both per-packet paths are allocation-free in steady state: forwarding
// indexes a dense next-hop vector by destination id, and delivery probes
// one open-addressing flat table (see flat_table.hpp) holding exact
// connections and wildcard listeners. Handlers are SmallFunction (inline
// captures, move-only), so neither binding a flow nor delivering a packet
// copies a std::function.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/flow_arena.hpp"
#include "net/flat_table.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"

namespace qoesim::net {

/// Shard-plane: a node (its demux table, routes, counters) belongs to the
/// shard running its simulation. Public entry points assert the capability
/// through the simulation's ShardAffinity; the inner delivery path
/// requires it statically (see core/annotations.hpp).
class QOESIM_SHARD_PLANE Node {
 public:
  using Handler = SmallFunction<void(Packet&&)>;

  /// Lifetime counters, kept per node and folded into the StatsFold
  /// installed via set_stats_fold() (if any) on destruction, so benches
  /// can assert no packet was silently blackholed by a misrouted topology.
  struct Stats {
    std::uint64_t delivered = 0;    ///< packets handed to a bound handler
    std::uint64_t undelivered = 0;  ///< addressed here, no handler bound
    /// Late TCP segments of an already-torn-down connection (carrying ACK
    /// and/or FIN, no binding) -- includes SYN-ACKs retransmitted into a
    /// client that aborted its connect. A real stack absorbs these in
    /// TIME_WAIT (or answers with RST); the simulator tears the binding
    /// down immediately and accounts for them here instead, so
    /// `undelivered` stays a strict misconfiguration signal: any fresh
    /// conversation (pure TCP SYN, UDP) arriving at a node with no
    /// handler still counts as undelivered.
    std::uint64_t stray_late = 0;
    std::uint64_t unrouted = 0;     ///< no route and no default route
    std::uint64_t binds = 0;        ///< connection + listener binds
    std::uint64_t unbinds = 0;
    std::uint64_t demux_rehashes = 0;  ///< flat-table growth events

    // Flow-arena accounting (see core/flow_arena.hpp): counters sum across
    // nodes; the per-flow byte sizes take the max (every node pools the
    // same socket type, so they normally agree).
    std::uint64_t flows_opened = 0;
    std::uint64_t flows_closed = 0;
    std::uint64_t flow_peak_live = 0;      ///< summed per-node peaks
    std::uint64_t flow_hot_bytes = 0;      ///< pooled slot size (max)
    std::uint64_t flow_cold_allocs = 0;
    std::uint64_t flow_cold_frees = 0;
    std::uint64_t flow_cold_peak_live = 0; ///< summed per-node peaks
    std::uint64_t flow_cold_bytes = 0;     ///< cold block size (max)

    Stats& operator+=(const Stats& o) {
      delivered += o.delivered;
      undelivered += o.undelivered;
      stray_late += o.stray_late;
      unrouted += o.unrouted;
      binds += o.binds;
      unbinds += o.unbinds;
      demux_rehashes += o.demux_rehashes;
      flows_opened += o.flows_opened;
      flows_closed += o.flows_closed;
      flow_peak_live += o.flow_peak_live;
      flow_hot_bytes = flow_hot_bytes > o.flow_hot_bytes ? flow_hot_bytes
                                                         : o.flow_hot_bytes;
      flow_cold_allocs += o.flow_cold_allocs;
      flow_cold_frees += o.flow_cold_frees;
      flow_cold_peak_live += o.flow_cold_peak_live;
      flow_cold_bytes = flow_cold_bytes > o.flow_cold_bytes
                            ? flow_cold_bytes
                            : o.flow_cold_bytes;
      return *this;
    }
  };

  /// Thread-safe accumulator for the Stats of many nodes (all fields sum).
  /// Nodes die on sweep worker threads, so fold() takes a mutex; contention
  /// is one lock per node lifetime. There is no process-wide instance:
  /// benches own one (inside a core::StatsRegistry) and Topology installs
  /// it on every node it creates, keeping the engine itself free of shared
  /// mutable state (a PDES-sharding prerequisite).
  class StatsFold {
   public:
    void fold(const Stats& s);
    Stats snapshot() const;

   private:
    mutable Mutex mutex_;
    Stats total_ QOESIM_GUARDED_BY(mutex_);
  };

  Node(Simulation& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulation& sim() { return sim_; }

  /// Attach an outgoing link; returns the port index.
  std::size_t add_port(Link* out);
  std::size_t port_count() const { return ports_.size(); }
  Link* port_link(std::size_t port) const { return ports_.at(port); }

  /// Static routing: packets for `dst` leave through `port`.
  void set_next_hop(NodeId dst, std::size_t port);
  /// Fallback port when no specific route exists (hosts' default route).
  void set_default_route(std::size_t port);

  /// Entry point for packets arriving from links.
  void receive(Packet&& p);

  /// Send a packet originated by (or forwarded through) this node.
  void send(Packet&& p);

  // ---- transport demux ----------------------------------------------------

  /// Bind an exact connection (proto, local port, remote node, remote port).
  /// Rebinding a key that is already bound replaces its handler. Returns
  /// the binding's demux generation stamp -- pass it to the gen-checked
  /// unbind_connection overload so a deferred teardown cannot erase a
  /// newer binding on the reused 4-tuple.
  std::uint64_t bind_connection(Protocol proto, std::uint32_t local_port,
                                NodeId remote, std::uint32_t remote_port,
                                Handler h);
  void unbind_connection(Protocol proto, std::uint32_t local_port,
                         NodeId remote, std::uint32_t remote_port);
  /// Gen-checked unbind: a no-op when the binding was already replaced
  /// (its generation moved past `expected_gen`).
  void unbind_connection(Protocol proto, std::uint32_t local_port,
                         NodeId remote, std::uint32_t remote_port,
                         std::uint64_t expected_gen);

  /// Bind a wildcard listener on (proto, local port).
  void bind_listener(Protocol proto, std::uint32_t local_port, Handler h);
  void unbind_listener(Protocol proto, std::uint32_t local_port);

  /// Allocate an ephemeral port (IANA dynamic range [49152, 65535]),
  /// wrapping around and skipping ports with a live local binding. Throws
  /// std::runtime_error if all 16384 ports are bound.
  std::uint32_t allocate_port();

  /// Packets delivered to a bound handler.
  std::uint64_t delivered() const { return stats_.delivered; }
  /// Packets that arrived addressed to this node with no bound handler.
  std::uint64_t undelivered() const { return stats_.undelivered; }
  /// Packets dropped because no route existed.
  std::uint64_t unrouted() const { return stats_.unrouted; }

  /// Live demux bindings (connections + listeners) and table growths.
  /// demux_rehashes() staying flat across a churn phase demonstrates the
  /// node plane's steady state performs no allocation.
  std::size_t bound_count() const { return demux_.size(); }
  std::uint64_t demux_rehashes() const { return demux_.rehashes(); }
  /// Probe-length distribution of the live demux table (bench_megaflows
  /// proves lookups stay near-flat to 1M entries with it).
  FlatTable<Handler>::ProbeStats demux_probe_stats() const {
    return demux_.probe_stats();
  }
  /// Wall-clock {probes, total ns} of one find per live demux entry
  /// (stderr-only figure; see FlatTable::timed_find_walk).
  std::pair<std::uint64_t, std::uint64_t> demux_timed_find_walk() const {
    return demux_.timed_find_walk();
  }

  /// The pooled per-flow state arena every TcpSocket this node originates
  /// or accepts lives in (see core/flow_arena.hpp and the README "flow
  /// lifecycle & memory contract" section).
  core::FlowArena& flow_arena() { return flows_; }

  /// This node's lifetime counters.
  Stats stats() const;
  /// Install the accumulator this node folds its lifetime Stats into on
  /// destruction (nullptr = don't fold anywhere, the default). The fold
  /// must outlive the node; the bench harness reads its snapshot to assert
  /// that a figure run blackholed nothing (undelivered == unrouted == 0).
  void set_stats_fold(StatsFold* fold) { stats_fold_ = fold; }

 private:
  void deliver_local(Packet&& p) QOESIM_REQUIRES_SHARD;
  void note_bound(std::uint32_t local_port);
  void note_unbound(std::uint32_t local_port);
  bool port_in_use(std::uint32_t port) const;

  Simulation& sim_;
  NodeId id_;
  std::string name_;
  std::vector<Link*> ports_;
  /// Next-hop port per destination id; -1 = no entry. Node ids are dense
  /// (Topology hands them out sequentially), so direct indexing replaces
  /// the former std::map route lookup.
  std::vector<std::int32_t> routes_;
  std::ptrdiff_t default_route_ = -1;

  /// Exact connections and wildcard listeners in one table (listeners use
  /// the DemuxKey::wildcard sentinel remote, which no packet ever carries).
  FlatTable<Handler> demux_;

  static constexpr std::uint32_t kEphemeralLo = 49152;
  static constexpr std::uint32_t kEphemeralHi = 65535;
  std::uint32_t next_ephemeral_ = kEphemeralLo;
  /// Per-ephemeral-port count of live local bindings (connections and
  /// listeners), sized lazily on first use; lets allocate_port() skip
  /// still-bound ports after wrapping around.
  std::vector<std::uint16_t> ephemeral_use_;

  /// Pooled flow-state arena (slots + cold blocks). Declared after the
  /// demux so handlers (which capture only a Core ref + handle) are freed
  /// first on destruction; ~Node drops the arena's socket refs before
  /// folding stats so flows_closed counts teardown.
  core::FlowArena flows_;

  Stats stats_;
  StatsFold* stats_fold_ = nullptr;
};

}  // namespace qoesim::net
