#include "net/drop_tail.hpp"

// DropTailQueue is fully inline; this translation unit anchors the header
// in the build so compile errors surface even if no other TU includes it.
