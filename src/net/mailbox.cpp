#include "net/mailbox.hpp"

#include "net/node.hpp"
#include "sim/annotations.hpp"

#include <utility>

namespace qoesim::net {

void MailboxInbox::admit(Time when, std::uint64_t seq, Packet&& p) {
  if (size_ == buf_.size()) {
    // Grow to the next power of two, unrolling the ring so the live
    // entries occupy [0, size_) -- same idiom as WireRing::push, with
    // moves because entries carry a Packet.
    // qoesim-lint: allow(hot-alloc) -- geometric ring growth; free once the ring fits the barrier batch
    std::vector<Entry> bigger(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i)
      bigger[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    buf_ = std::move(bigger);
    head_ = 0;
  }
  const bool was_idle = size_ == 0;
  buf_[(head_ + size_) & (buf_.size() - 1)] =
      Entry{when, seq, std::move(p)};
  ++size_;
  if (was_idle) arm(when, seq);
}

void MailboxInbox::arm(Time when, std::uint64_t seq) {
  // Always a fresh schedule at the entry's reserved seq (the pooled
  // re-arm idiom shared with Link::arm_delivery); the handle is not kept
  // because the event is never moved or cancelled.
  sim_.scheduler().schedule_at_seq(when, seq, [this] {
    sim_.shard().assert_held();  // event fires inside the owning epoch
    deliver_front();
  });
}

QOESIM_HOT void MailboxInbox::deliver_front() {
  Entry& front = buf_[head_];
  Packet p = std::move(front.packet);
  head_ = (head_ + 1) & (buf_.size() - 1);
  --size_;
  dest_.receive(std::move(p));
  if (size_ != 0) {
    const Entry& next = buf_[head_];
    arm(next.when, next.seq);
  }
}

}  // namespace qoesim::net
