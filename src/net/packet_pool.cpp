#include "net/packet_pool.hpp"

#include "sim/annotations.hpp"

#include <algorithm>
#include <utility>

namespace qoesim::net {

QOESIM_HOT PacketPool::SlotId PacketPool::acquire(Packet&& p) {
  ++stats_.acquired;
  stats_.peak_in_flight =
      std::max<std::uint64_t>(stats_.peak_in_flight, in_flight());
  if (!free_.empty()) {
    const SlotId slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(p);
    return slot;
  }
  ++stats_.slab_growths;
  const SlotId slot = static_cast<SlotId>(slots_.size());
  // qoesim-lint: allow(hot-alloc) -- slab growth; free in steady state once the pool warms up
  slots_.push_back(std::move(p));
  // The free stack can hold at most one entry per slot; reserving alongside
  // the slab keeps release() allocation-free.
  // qoesim-lint: allow(hot-alloc) -- grows with the slab so release() below never reallocates
  free_.reserve(slots_.size());
  return slot;
}

QOESIM_HOT Packet PacketPool::release(SlotId slot) {
  ++stats_.released;
  // qoesim-lint: allow(hot-alloc) -- capacity reserved in acquire(); never reallocates
  free_.push_back(slot);
  return std::move(slots_[slot]);
}

QOESIM_HOT void WireRing::push(Entry e) {
  if (size_ == buf_.size()) {
    // Grow to the next power of two, unrolling the ring so the live
    // entries occupy [0, size_).
    // qoesim-lint: allow(hot-alloc) -- geometric ring growth; free once the ring fits the BDP
    std::vector<Entry> bigger(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i)
      bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    buf_ = std::move(bigger);
    head_ = 0;
  }
  buf_[(head_ + size_) & (buf_.size() - 1)] = e;
  ++size_;
}

QOESIM_HOT void WireRing::pop() {
  head_ = (head_ + 1) & (buf_.size() - 1);
  --size_;
}

}  // namespace qoesim::net
