#include "net/packet_pool.hpp"

#include <algorithm>
#include <utility>

namespace qoesim::net {

PacketPool::SlotId PacketPool::acquire(Packet&& p) {
  ++stats_.acquired;
  stats_.peak_in_flight =
      std::max<std::uint64_t>(stats_.peak_in_flight, in_flight());
  if (!free_.empty()) {
    const SlotId slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(p);
    return slot;
  }
  ++stats_.slab_growths;
  const SlotId slot = static_cast<SlotId>(slots_.size());
  slots_.push_back(std::move(p));
  // The free stack can hold at most one entry per slot; reserving alongside
  // the slab keeps release() allocation-free.
  free_.reserve(slots_.size());
  return slot;
}

Packet PacketPool::release(SlotId slot) {
  ++stats_.released;
  free_.push_back(slot);
  return std::move(slots_[slot]);
}

void WireRing::push(Entry e) {
  if (size_ == buf_.size()) {
    // Grow to the next power of two, unrolling the ring so the live
    // entries occupy [0, size_).
    std::vector<Entry> bigger(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i)
      bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    buf_ = std::move(bigger);
    head_ = 0;
  }
  buf_[(head_ + size_) & (buf_.size() - 1)] = e;
  ++size_;
}

void WireRing::pop() {
  head_ = (head_ + 1) & (buf_.size() - 1);
  --size_;
}

}  // namespace qoesim::net
