// qoesim -- packet model.
//
// Packets are value types: payload bytes are not materialized, only sizes
// and the protocol/application metadata the simulator needs. A packet's
// wire size includes all headers, so link serialization and buffer
// occupancy match what the paper's testbeds measured.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace qoesim::net {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

enum class Protocol : std::uint8_t { kTcp, kUdp };

/// ECN codepoint of the (simulated) IP header, RFC 3168 §5. Transports
/// that negotiated ECN send data as ECT(0); an AQM with marking enabled
/// sets CE instead of dropping. Everything else stays Not-ECT and keeps
/// the drop behaviour.
enum class Ecn : std::uint8_t {
  kNotEct = 0,  ///< not ECN-capable transport
  kEct1 = 1,    ///< ECT(1)
  kEct0 = 2,    ///< ECT(0), the codepoint RFC 3168 senders use
  kCe = 3,      ///< congestion experienced (set by the AQM)
};

inline bool is_ect(Ecn e) { return e == Ecn::kEct0 || e == Ecn::kEct1; }

/// Header overheads (IPv4, no options).
inline constexpr std::uint32_t kIpHeaderBytes = 20;
inline constexpr std::uint32_t kTcpHeaderBytes = 20 + kIpHeaderBytes;  // 40
inline constexpr std::uint32_t kUdpHeaderBytes = 8 + kIpHeaderBytes;   // 28
inline constexpr std::uint32_t kRtpHeaderBytes = 12;
/// Ethernet MTU payload; the paper sizes buffers in full-sized packets.
inline constexpr std::uint32_t kMtuBytes = 1500;
/// TCP maximum segment size for an MTU of 1500 with 40 bytes of headers.
inline constexpr std::uint32_t kDefaultMss = kMtuBytes - kTcpHeaderBytes;

/// One SACK block: received bytes [start, end).
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

struct TcpSegment {
  std::uint32_t src_port = 0;
  std::uint32_t dst_port = 0;
  std::uint64_t seq = 0;    ///< sequence number of first payload byte
  std::uint64_t ack = 0;    ///< cumulative acknowledgement (next expected byte)
  std::uint32_t payload = 0;
  bool syn = false;
  bool fin = false;
  bool has_ack = false;
  /// RFC 3168 ECN flags: ECE echoes a received CE mark back to the sender
  /// (kept set until CWR is seen); CWR tells the receiver the sender has
  /// reduced its window. On a SYN, ECE+CWR together request ECN; on a
  /// SYN-ACK, ECE alone grants it.
  bool ece = false;
  bool cwr = false;
  /// RFC 2018 selective acknowledgements (up to 3 blocks fit alongside the
  /// timestamp option in a real header).
  std::uint8_t sack_count = 0;
  SackBlock sack[3];
};

struct UdpDatagram {
  std::uint32_t src_port = 0;
  std::uint32_t dst_port = 0;
  std::uint32_t payload = 0;
};

/// Application-level tag carried by probe traffic so receivers can
/// reconstruct loss/delay patterns per media unit.
enum class AppKind : std::uint8_t { kNone, kVoip, kVideo, kWeb, kBulk };

struct AppTag {
  AppKind kind = AppKind::kNone;
  std::uint32_t stream_id = 0;  ///< call id / video stream id / transfer id
  std::uint32_t seq = 0;        ///< per-stream packet sequence number
  std::uint32_t frame = 0;      ///< video frame index
  std::uint16_t slice = 0;      ///< video slice index within the frame
  Time created;                 ///< application send time
};

struct Packet {
  std::uint64_t uid = 0;     ///< globally unique packet id
  FlowId flow = 0;           ///< transport flow id (for tracing)
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Protocol proto = Protocol::kUdp;
  Ecn ecn = Ecn::kNotEct;        ///< ECN codepoint (IP header)
  std::uint32_t size_bytes = 0;  ///< wire size including all headers

  TcpSegment tcp;   ///< valid when proto == kTcp
  UdpDatagram udp;  ///< valid when proto == kUdp
  AppTag app;

  Time enqueued_at;  ///< set by the queue on admission (delay accounting)

  std::string describe() const;
};

}  // namespace qoesim::net
