// qoesim -- CoDel (Controlled Delay) AQM, Nichols & Jacobson 2012.
//
// The paper cites CoDel as the AQM response to bufferbloat; this
// implementation follows the RFC 8289 pseudocode: drop head-of-line
// packets while sojourn time has exceeded `target` for at least `interval`,
// with the drop spacing shrinking as interval/sqrt(drop_count). Re-entering
// the dropping state within 16 intervals resumes from the previous drop
// rate (§4.3 hysteresis) instead of restarting at one drop per interval.
#pragma once

#include <deque>

#include "net/queue.hpp"

namespace qoesim::net {

struct CoDelParams {
  Time target = Time::milliseconds(5);
  Time interval = Time::milliseconds(100);
};

class CoDelQueue final : public QueueDiscipline {
 public:
  explicit CoDelQueue(std::size_t capacity_packets, CoDelParams params = {});

  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }
  std::string name() const override { return "CoDel"; }

  /// Dropping-state introspection (tests, monitors).
  bool dropping() const { return dropping_; }
  std::uint32_t drop_count() const { return drop_count_; }

 protected:
  bool do_enqueue(Packet&& p, Time now) override;
  std::optional<Packet> do_dequeue(Time now) override;

 private:
  /// Pop the head and check whether its sojourn is below target.
  std::optional<Packet> pop_head(Time now, bool& ok_sojourn);
  Time control_law(Time t) const;

  CoDelParams params_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;

  Time first_above_time_ = Time::zero();  // when sojourn first exceeded target
  Time drop_next_ = Time::zero();         // next scheduled drop while dropping
  std::uint32_t drop_count_ = 0;
  std::uint32_t last_drop_count_ = 0;
  bool dropping_ = false;
};

}  // namespace qoesim::net
