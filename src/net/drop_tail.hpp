// qoesim -- drop-tail FIFO queue, the discipline used throughout the paper.
// Capacity is counted in packets, matching the NetFPGA reference router and
// the Cisco linecard configuration of the testbeds (Table 2).
#pragma once

#include <deque>

#include "sim/annotations.hpp"

#include "net/queue.hpp"

namespace qoesim::net {

class DropTailQueue final : public QueueDiscipline {
 public:
  explicit DropTailQueue(std::size_t capacity_packets)
      : QueueDiscipline(capacity_packets) {}

  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }
  std::string name() const override { return "DropTail"; }

 protected:
  QOESIM_HOT bool do_enqueue(Packet&& p, Time /*now*/) override {
    if (q_.size() >= capacity_) {
      count_drop(p);
      return false;
    }
    bytes_ += p.size_bytes;
    // qoesim-lint: allow(hot-alloc) -- capacity_-bounded deque; blocks recycled in steady state
    q_.push_back(std::move(p));
    return true;
  }

  QOESIM_HOT std::optional<Packet> do_dequeue(Time /*now*/) override {
    if (q_.empty()) return std::nullopt;
    Packet p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p.size_bytes;
    return p;
  }

 private:
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
};

}  // namespace qoesim::net
