#include "cdn/srtt_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qoesim::cdn {

const char* to_string(AccessTech tech) {
  switch (tech) {
    case AccessTech::kAdsl: return "ADSL";
    case AccessTech::kCable: return "Cable";
    case AccessTech::kFtth: return "FTTH";
    case AccessTech::kUnknown: return "Unknown";
  }
  return "?";
}

CdnDatasetConfig CdnDatasetConfig::paper_calibration() {
  CdnDatasetConfig c;
  // Flow shares from §3: 70% ADSL, 1.4% Cable, 0.02% FTTH; the remainder
  // could not be classified by whois/DNS. Queue-delay medians/sigmas are
  // calibrated so the aggregate hits the published tail fractions
  // (~80% < 100 ms, ~2.8% > 500 ms, ~1% > 1000 ms).
  c.profiles = {
      // ADSL: interleaving raises the base RTT; uplink buffers make the
      // queueing tail the heaviest of the three technologies.
      {AccessTech::kAdsl, 0.700, 45.0, 0.65, 13.0, 1.05, 2.3},
      // Cable: DOCSIS request/grant delay, slightly lighter queueing.
      {AccessTech::kCable, 0.014, 30.0, 0.60, 10.0, 0.95, 2.3},
      // FTTH: low base RTT and little queueing.
      {AccessTech::kFtth, 0.0002, 15.0, 0.50, 5.0, 0.90, 2.0},
      // Unclassified remainder: a broad mixture, slightly remote-heavy
      // (the CDN serves 220+ countries from central-European vantages).
      {AccessTech::kUnknown, 0.2858, 90.0, 1.00, 12.0, 1.00, 2.3},
  };
  return c;
}

CdnDatasetGenerator::CdnDatasetGenerator(CdnDatasetConfig config)
    : config_(std::move(config)) {
  if (config_.profiles.empty()) {
    config_.profiles = CdnDatasetConfig::paper_calibration().profiles;
  }
  double total = 0.0;
  for (const auto& p : config_.profiles) total += p.weight;
  if (total <= 0.0) {
    throw std::invalid_argument("CdnDatasetConfig: weights must sum > 0");
  }
}

FlowRecord CdnDatasetGenerator::generate_flow(const TechProfile& profile,
                                              RandomStream& rng) const {
  FlowRecord f;
  f.tech = profile.tech;

  const double base =
      rng.lognormal(std::log(profile.base_median_ms), profile.base_sigma);
  // Queueing exposure scales with path length (see TechProfile).
  const double distance_factor =
      std::pow(base / profile.base_median_ms, profile.distance_exponent);
  const double queue_range = rng.lognormal(
      std::log(profile.queue_median_ms * distance_factor),
      profile.queue_sigma);

  f.min_srtt_ms = base;
  f.max_srtt_ms = base + queue_range;
  // The average sits between min and max depending on how persistently the
  // queue was occupied during the connection.
  const double occupancy = rng.uniform(0.05, 0.55);
  f.avg_srtt_ms = base + queue_range * occupancy;
  f.samples = static_cast<std::uint32_t>(rng.uniform_int(
      config_.min_samples, config_.max_samples));
  return f;
}

std::vector<FlowRecord> CdnDatasetGenerator::generate(RandomStream& rng) const {
  std::vector<double> weights;
  weights.reserve(config_.profiles.size());
  for (const auto& p : config_.profiles) weights.push_back(p.weight);

  std::vector<FlowRecord> out;
  out.reserve(config_.flows);
  for (std::size_t i = 0; i < config_.flows; ++i) {
    const auto& profile = config_.profiles[rng.discrete(weights)];
    out.push_back(generate_flow(profile, rng));
  }
  return out;
}

}  // namespace qoesim::cdn
