// qoesim -- synthetic CDN sRTT dataset (paper §3, "Buffering in the wild").
//
// The paper analyzes kernel-level TCP statistics (per-connection minimum /
// average / maximum smoothed RTT and sample count) for 430M connections
// collected at a major CDN -- proprietary data we cannot obtain. This
// generator produces a synthetic population with the same schema,
// calibrated to the aggregate statistics the paper publishes: access-
// technology mix resolved from whois/DNS (ADSL 70%, Cable 1.4%, FTTH
// 0.02% of flows), ~80% of flows seeing < 100 ms of delay variation,
// 2.8% > 500 ms and 1% > 1 s. The §3 analysis pipeline (srtt_analysis)
// then runs unchanged on either real or synthetic records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace qoesim::cdn {

enum class AccessTech : std::uint8_t { kAdsl, kCable, kFtth, kUnknown };

const char* to_string(AccessTech tech);

/// One TCP connection's kernel sRTT statistics (the dataset schema of §3).
struct FlowRecord {
  AccessTech tech = AccessTech::kUnknown;
  double min_srtt_ms = 0.0;
  double avg_srtt_ms = 0.0;
  double max_srtt_ms = 0.0;
  std::uint32_t samples = 0;
};

/// Per-technology model of base RTT and queueing exposure.
struct TechProfile {
  AccessTech tech = AccessTech::kUnknown;
  double weight = 0.0;            ///< share of flows
  // Base (uncongested) RTT: log-normal over milliseconds.
  double base_median_ms = 40.0;
  double base_sigma = 0.7;
  // Queueing-delay range (max - min sRTT): log-normal over milliseconds,
  // whose median scales with the path length -- long paths traverse more
  // queues (and accumulate more non-queueing variation such as route
  // changes, which the paper's estimator cannot separate, §3). This is
  // what makes the paper's "min sRTT <= 100 ms" proximity cut so clean.
  double queue_median_ms = 16.0;
  double queue_sigma = 1.3;
  double distance_exponent = 1.5;  ///< queue median ~ (base/median)^exp
};

struct CdnDatasetConfig {
  std::size_t flows = 500000;
  std::vector<TechProfile> profiles;  ///< defaults per the paper's mix
  std::uint32_t min_samples = 2;
  std::uint32_t max_samples = 200;

  static CdnDatasetConfig paper_calibration();
};

class CdnDatasetGenerator {
 public:
  explicit CdnDatasetGenerator(CdnDatasetConfig config);

  std::vector<FlowRecord> generate(RandomStream& rng) const;

  const CdnDatasetConfig& config() const { return config_; }

 private:
  FlowRecord generate_flow(const TechProfile& profile, RandomStream& rng) const;
  CdnDatasetConfig config_;
};

}  // namespace qoesim::cdn
