#include "cdn/srtt_analysis.hpp"

#include <stdexcept>

namespace qoesim::cdn {

SrttAnalysis::SrttAnalysis(AnalysisConfig config)
    : config_(config),
      min_hist_(config.hist_min_ms, config.hist_max_ms, config.bins_per_decade),
      avg_hist_(config.hist_min_ms, config.hist_max_ms, config.bins_per_decade),
      max_hist_(config.hist_min_ms, config.hist_max_ms, config.bins_per_decade),
      min_max_hist_(config.hist_min_ms, config.hist_max_ms,
                    config.bins_per_decade),
      queue_hist_(config.hist_min_ms, config.hist_max_ms,
                  config.bins_per_decade) {
  for (auto tech : {AccessTech::kAdsl, AccessTech::kCable, AccessTech::kFtth,
                    AccessTech::kUnknown}) {
    queue_by_tech_.emplace(
        tech, stats::LogHistogram(config.hist_min_ms, config.hist_max_ms,
                                  config.bins_per_decade));
  }
}

void SrttAnalysis::add(const FlowRecord& flow) {
  ++flows_total_;
  if (flow.samples < config_.min_samples) return;
  // qoesim-lint: allow(hot-alloc) -- offline dataset analysis, never on the packet path (name-collides with RunningStats::add)
  considered_.push_back(flow);

  min_hist_.add(flow.min_srtt_ms);
  avg_hist_.add(flow.avg_srtt_ms);
  max_hist_.add(flow.max_srtt_ms);
  min_max_hist_.add(flow.max_srtt_ms, flow.min_srtt_ms);

  const double queue_ms = flow.max_srtt_ms - flow.min_srtt_ms;
  queue_hist_.add(queue_ms);
  queue_by_tech_.at(flow.tech).add(queue_ms);
}

void SrttAnalysis::add_all(const std::vector<FlowRecord>& flows) {
  for (const auto& f : flows) add(f);
}

const stats::LogHistogram& SrttAnalysis::queueing_pdf(AccessTech tech) const {
  return queue_by_tech_.at(tech);
}

namespace {

TailFractions fractions_over(const std::vector<FlowRecord>& flows,
                             double proximity_ms) {
  TailFractions t;
  for (const auto& f : flows) {
    if (f.min_srtt_ms > proximity_ms) continue;
    ++t.flows_considered;
    const double q = f.max_srtt_ms - f.min_srtt_ms;
    if (q < 100.0) t.below_100ms += 1.0;
    if (q > 500.0) t.above_500ms += 1.0;
    if (q > 1000.0) t.above_1000ms += 1.0;
  }
  if (t.flows_considered > 0) {
    const auto n = static_cast<double>(t.flows_considered);
    t.below_100ms /= n;
    t.above_500ms /= n;
    t.above_1000ms /= n;
  }
  return t;
}

}  // namespace

TailFractions SrttAnalysis::tail_fractions() const {
  return fractions_over(considered_,
                        std::numeric_limits<double>::infinity());
}

TailFractions SrttAnalysis::tail_fractions_near(double proximity_ms) const {
  return fractions_over(considered_, proximity_ms);
}

}  // namespace qoesim::cdn
