// qoesim -- the paper's §3 analysis pipeline.
//
// Implements the actual method of the paper on FlowRecords (real or
// synthetic): only flows with >= 10 RTT samples are considered; queueing
// delay is estimated as (max - min) sRTT, an upper bound since route
// changes and L2 delays cannot be separated; distributions are reported
// over a logarithmic axis (Fig. 1a/1c) plus a min-vs-max 2D histogram
// (Fig. 1b) and the headline tail fractions.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "cdn/srtt_dataset.hpp"
#include "stats/hist2d.hpp"
#include "stats/histogram.hpp"

namespace qoesim::cdn {

struct AnalysisConfig {
  std::uint32_t min_samples = 10;    ///< flows below are excluded (§3)
  double hist_min_ms = 1.0;
  double hist_max_ms = 10000.0;
  std::size_t bins_per_decade = 10;
};

struct TailFractions {
  std::size_t flows_considered = 0;
  double below_100ms = 0.0;   ///< paper: ~80%
  double above_500ms = 0.0;   ///< paper: ~2.8%
  double above_1000ms = 0.0;  ///< paper: ~1%
};

class SrttAnalysis {
 public:
  explicit SrttAnalysis(AnalysisConfig config = {});

  void add(const FlowRecord& flow);
  void add_all(const std::vector<FlowRecord>& flows);

  /// Fig. 1a: PDFs of log(min/avg/max sRTT).
  const stats::LogHistogram& min_rtt_pdf() const { return min_hist_; }
  const stats::LogHistogram& avg_rtt_pdf() const { return avg_hist_; }
  const stats::LogHistogram& max_rtt_pdf() const { return max_hist_; }

  /// Fig. 1b: min vs. max sRTT per flow.
  const stats::LogHist2D& min_vs_max() const { return min_max_hist_; }

  /// Fig. 1c: estimated queueing delay PDF, overall and per technology.
  const stats::LogHistogram& queueing_pdf() const { return queue_hist_; }
  const stats::LogHistogram& queueing_pdf(AccessTech tech) const;

  /// Headline fractions over the estimated queueing delay.
  TailFractions tail_fractions() const;

  /// The same fractions restricted to flows with min sRTT <= `proximity`
  /// (the paper's "close to the CDN" cut: 95% < 100 ms, 99.9% < 1 s).
  TailFractions tail_fractions_near(double proximity_ms = 100.0) const;

  std::size_t flows_total() const { return flows_total_; }
  std::size_t flows_considered() const { return considered_.size(); }

 private:
  AnalysisConfig config_;
  std::size_t flows_total_ = 0;
  std::vector<FlowRecord> considered_;

  stats::LogHistogram min_hist_;
  stats::LogHistogram avg_hist_;
  stats::LogHistogram max_hist_;
  stats::LogHist2D min_max_hist_;
  stats::LogHistogram queue_hist_;
  std::map<AccessTech, stats::LogHistogram> queue_by_tech_;
};

}  // namespace qoesim::cdn
