#include "trafficgen/long_flows.hpp"

#include <stdexcept>

namespace qoesim::trafficgen {

LongFlowGenerator::LongFlowGenerator(Simulation& sim,
                                     std::vector<net::Node*> sources,
                                     std::vector<net::Node*> sinks,
                                     LongFlowConfig config, RandomStream rng)
    : sim_(sim),
      sources_(std::move(sources)),
      sinks_(std::move(sinks)),
      config_(config),
      rng_(rng) {
  if (sources_.empty() || sinks_.empty()) {
    throw std::invalid_argument("LongFlowGenerator: need sources and sinks");
  }
}

void LongFlowGenerator::start() {
  for (net::Node* sink : sinks_) {
    acceptors_.push_back(std::make_unique<tcp::TcpServer>(
        *sink, config_.sink_port, config_.tcp,
        [](std::shared_ptr<tcp::TcpSocket>) {
          // Pure sink: never closes; data is consumed on arrival.
        }));
  }

  for (std::size_t i = 0; i < config_.flows; ++i) {
    net::Node* src = sources_[i % sources_.size()];
    net::Node* dst = sinks_[i % sinks_.size()];
    const Time start = config_.start_window * rng_.uniform();
    sim_.after(start, [this, src, dst] {
      auto sock = tcp::TcpSocket::connect(*src, dst->id(), config_.sink_port,
                                          config_.tcp, {});
      auto weak = std::weak_ptr<tcp::TcpSocket>(sock);
      const std::uint64_t chunk = config_.chunk_bytes;
      sock->set_callbacks({
          .on_connected =
              [weak, chunk] {
                if (auto s = weak.lock()) s->send(2 * chunk);
              },
          .on_data = {},
          .on_remote_close = {},
          .on_closed = {},
      });
      flows_.push_back(std::move(sock));
    });
  }

  refill();
}

void LongFlowGenerator::refill() {
  for (auto& sock : flows_) {
    if (sock->established() && sock->unsent_bytes() < config_.chunk_bytes) {
      sock->send(config_.chunk_bytes);
    }
  }
  sim_.after(config_.refill_interval, [this] { refill(); });
}

std::uint64_t LongFlowGenerator::total_bytes_acked() const {
  std::uint64_t total = 0;
  for (const auto& sock : flows_) total += sock->stats().bytes_acked;
  return total;
}

}  // namespace qoesim::trafficgen
