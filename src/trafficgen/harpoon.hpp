// qoesim -- Harpoon-like flow-level traffic generator (Sommers et al.).
//
// Each "session" mimics a user: it draws file-transfer request times from
// an exponential inter-arrival process and file sizes from a configurable
// distribution, opening one TCP connection per file from a source host to a
// sink host. Requests do not wait for earlier transfers, so heavy files
// produce the self-similar mixture of short bursts and long-lived flows the
// paper uses as background traffic ("short-*" scenarios).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "sim/simulation.hpp"
#include "stats/summary.hpp"
#include "tcp/tcp_server.hpp"
#include "tcp/tcp_socket.hpp"
#include "trafficgen/distributions.hpp"

namespace qoesim::trafficgen {

struct HarpoonConfig {
  std::size_t sessions = 1;
  DistributionPtr interarrival;  ///< seconds between requests per session
  DistributionPtr file_size;     ///< bytes per transfer
  tcp::TcpConfig tcp;
  std::uint32_t sink_port = 9000;
  /// Requests arriving while this many flows of a session are still active
  /// are skipped (guards the simulator against unbounded flow pile-up in
  /// overload scenarios; 0 = unlimited, Harpoon semantics).
  std::size_t max_active_per_session = 0;
};

/// Tracks the number of concurrently active flows as a time-weighted mean,
/// the statistic reported in Table 1 ("Concurrent Flows").
class ConcurrencyGauge {
 public:
  void change(Time now, int delta);
  std::size_t current() const { return current_; }
  double time_weighted_mean(Time now) const;
  std::size_t peak() const { return peak_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  Time last_change_;
  double integral_ = 0.0;  // sum of count * seconds
};

class HarpoonGenerator {
 public:
  /// Traffic flows from `sources` to `sinks` (sources actively connect and
  /// push data; sinks run acceptors). Call start() to begin.
  HarpoonGenerator(Simulation& sim, std::vector<net::Node*> sources,
                   std::vector<net::Node*> sinks, HarpoonConfig config,
                   RandomStream rng);
  ~HarpoonGenerator() = default;

  HarpoonGenerator(const HarpoonGenerator&) = delete;
  HarpoonGenerator& operator=(const HarpoonGenerator&) = delete;

  void start();
  /// Stop generating new flows (active flows drain naturally).
  void stop() { stopped_ = true; }

  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::uint64_t flows_skipped() const { return flows_skipped_; }
  std::uint64_t bytes_completed() const { return bytes_completed_; }
  const ConcurrencyGauge& concurrency() const { return gauge_; }
  /// Flow completion times (seconds), a QoS metric from related work (§2).
  const stats::Samples& completion_times() const { return fct_; }

 private:
  struct Session {
    std::size_t index = 0;
    std::size_t active = 0;
  };

  void schedule_next(Session& session);
  void start_flow(Session& session);

  Simulation& sim_;
  std::vector<net::Node*> sources_;
  std::vector<net::Node*> sinks_;
  HarpoonConfig config_;
  RandomStream rng_;
  bool stopped_ = false;

  std::vector<std::unique_ptr<tcp::TcpServer>> acceptors_;
  std::vector<Session> sessions_;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_skipped_ = 0;
  std::uint64_t bytes_completed_ = 0;
  ConcurrencyGauge gauge_;
  stats::Samples fct_;
};

}  // namespace qoesim::trafficgen
