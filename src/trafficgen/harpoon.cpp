#include "trafficgen/harpoon.hpp"

#include <algorithm>
#include <stdexcept>

namespace qoesim::trafficgen {

void ConcurrencyGauge::change(Time now, int delta) {
  integral_ += static_cast<double>(current_) * (now - last_change_).sec();
  last_change_ = now;
  if (delta < 0 && current_ < static_cast<std::size_t>(-delta)) {
    current_ = 0;
  } else {
    current_ = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(current_) +
                                        delta);
  }
  peak_ = std::max(peak_, current_);
}

double ConcurrencyGauge::time_weighted_mean(Time now) const {
  const double total =
      integral_ + static_cast<double>(current_) * (now - last_change_).sec();
  const double duration = now.sec();
  return duration > 0 ? total / duration : 0.0;
}

HarpoonGenerator::HarpoonGenerator(Simulation& sim,
                                   std::vector<net::Node*> sources,
                                   std::vector<net::Node*> sinks,
                                   HarpoonConfig config, RandomStream rng)
    : sim_(sim),
      sources_(std::move(sources)),
      sinks_(std::move(sinks)),
      config_(std::move(config)),
      rng_(rng) {
  if (sources_.empty() || sinks_.empty()) {
    throw std::invalid_argument("HarpoonGenerator: need sources and sinks");
  }
  if (!config_.interarrival || !config_.file_size) {
    throw std::invalid_argument("HarpoonGenerator: distributions required");
  }
}

void HarpoonGenerator::start() {
  // One acceptor per sink node; received flows are closed once the peer
  // half-closes, which completes the transfer.
  for (net::Node* sink : sinks_) {
    acceptors_.push_back(std::make_unique<tcp::TcpServer>(
        *sink, config_.sink_port, config_.tcp,
        [](std::shared_ptr<tcp::TcpSocket> sock) {
          auto weak = std::weak_ptr<tcp::TcpSocket>(sock);
          sock->set_callbacks({
              .on_connected = {},
              .on_data = {},
              .on_remote_close =
                  [weak] {
                    if (auto s = weak.lock()) s->close();
                  },
              .on_closed = {},
          });
        }));
  }

  sessions_.resize(config_.sessions);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    sessions_[i].index = i;
    schedule_next(sessions_[i]);
  }
}

void HarpoonGenerator::schedule_next(Session& session) {
  const double wait_s = std::max(0.0, config_.interarrival->sample(rng_));
  const std::size_t idx = session.index;
  sim_.after(Time::seconds(wait_s), [this, idx] {
    if (stopped_) return;
    start_flow(sessions_[idx]);
    schedule_next(sessions_[idx]);
  });
}

void HarpoonGenerator::start_flow(Session& session) {
  if (config_.max_active_per_session != 0 &&
      session.active >= config_.max_active_per_session) {
    ++flows_skipped_;
    return;
  }
  const auto size = static_cast<std::uint64_t>(
      std::max(1.0, config_.file_size->sample(rng_)));
  net::Node* src = sources_[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(sources_.size()) - 1))];
  net::Node* dst = sinks_[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(sinks_.size()) - 1))];

  ++flows_started_;
  ++session.active;
  gauge_.change(sim_.now(), +1);
  const Time t0 = sim_.now();
  const std::size_t session_idx = session.index;

  auto sock = tcp::TcpSocket::connect(*src, dst->id(), config_.sink_port,
                                      config_.tcp, {});
  auto weak = std::weak_ptr<tcp::TcpSocket>(sock);
  sock->set_callbacks({
      .on_connected =
          [weak, size] {
            if (auto s = weak.lock()) {
              s->send(size);
              s->close();
            }
          },
      .on_data = {},
      .on_remote_close = {},
      .on_closed =
          [this, session_idx, size, t0] {
            ++flows_completed_;
            bytes_completed_ += size;
            if (sessions_[session_idx].active > 0) {
              --sessions_[session_idx].active;
            }
            gauge_.change(sim_.now(), -1);
            fct_.add((sim_.now() - t0).sec());
          },
  });
}

}  // namespace qoesim::trafficgen
