#include "trafficgen/distributions.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace qoesim::trafficgen {

ConstantDist::ConstantDist(double value) : value_(value) {}

std::string ConstantDist::describe() const {
  std::ostringstream out;
  out << "constant(" << value_ << ")";
  return out.str();
}

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
  if (hi < lo) throw std::invalid_argument("UniformDist: hi < lo");
}

double UniformDist::sample(RandomStream& rng) const {
  return rng.uniform(lo_, hi_);
}

std::string UniformDist::describe() const {
  std::ostringstream out;
  out << "uniform(" << lo_ << "," << hi_ << ")";
  return out.str();
}

ExponentialDist::ExponentialDist(double mean) : mean_(mean) {
  if (mean <= 0) throw std::invalid_argument("ExponentialDist: mean <= 0");
}

double ExponentialDist::sample(RandomStream& rng) const {
  return rng.exponential(mean_);
}

std::string ExponentialDist::describe() const {
  std::ostringstream out;
  out << "exp(mean=" << mean_ << ")";
  return out.str();
}

WeibullDist::WeibullDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  if (shape <= 0 || scale <= 0) {
    throw std::invalid_argument("WeibullDist: parameters must be > 0");
  }
}

double WeibullDist::sample(RandomStream& rng) const {
  return rng.weibull(shape_, scale_);
}

double WeibullDist::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double WeibullDist::scale_for_mean(double shape, double mean) {
  return mean / std::tgamma(1.0 + 1.0 / shape);
}

std::string WeibullDist::describe() const {
  std::ostringstream out;
  out << "weibull(shape=" << shape_ << ",scale=" << scale_ << ")";
  return out.str();
}

ParetoDist::ParetoDist(double shape, double minimum)
    : shape_(shape), minimum_(minimum) {
  if (shape <= 0 || minimum <= 0) {
    throw std::invalid_argument("ParetoDist: parameters must be > 0");
  }
}

double ParetoDist::sample(RandomStream& rng) const {
  return rng.pareto(shape_, minimum_);
}

double ParetoDist::mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * minimum_ / (shape_ - 1.0);
}

std::string ParetoDist::describe() const {
  std::ostringstream out;
  out << "pareto(shape=" << shape_ << ",min=" << minimum_ << ")";
  return out.str();
}

LogNormalDist::LogNormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma < 0) throw std::invalid_argument("LogNormalDist: sigma < 0");
}

double LogNormalDist::sample(RandomStream& rng) const {
  return rng.lognormal(mu_, sigma_);
}

double LogNormalDist::mean() const {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

LogNormalDist LogNormalDist::from_mean_median(double mean, double median) {
  if (median <= 0 || mean <= median) {
    throw std::invalid_argument("LogNormalDist: need mean > median > 0");
  }
  const double mu = std::log(median);
  const double sigma = std::sqrt(2.0 * std::log(mean / median));
  return LogNormalDist(mu, sigma);
}

std::string LogNormalDist::describe() const {
  std::ostringstream out;
  out << "lognormal(mu=" << mu_ << ",sigma=" << sigma_ << ")";
  return out.str();
}

EmpiricalDist::EmpiricalDist(std::vector<double> values)
    : values_(std::move(values)) {
  if (values_.empty()) throw std::invalid_argument("EmpiricalDist: empty");
}

double EmpiricalDist::sample(RandomStream& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(values_.size()) - 1));
  return values_[idx];
}

double EmpiricalDist::mean() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

std::string EmpiricalDist::describe() const {
  std::ostringstream out;
  out << "empirical(n=" << values_.size() << ")";
  return out.str();
}

DistributionPtr paper_file_sizes() {
  // Table 1: weibull(shape=0.35, scale=10039) -> mean flow size ~50 KB.
  return std::make_shared<WeibullDist>(0.35, 10039.0);
}

}  // namespace qoesim::trafficgen
