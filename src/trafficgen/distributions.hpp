// qoesim -- random variate distributions for workload generation.
//
// The paper's workloads are specified distributionally (Table 1):
// exponential flow inter-arrivals and Weibull(shape=0.35, scale=10039) file
// sizes (mean 50 KB), chosen over Pareto because mean and variance are
// finite. The polymorphic interface lets scenarios swap size models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace qoesim::trafficgen {

class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double sample(RandomStream& rng) const = 0;
  /// Analytic mean (used for workload sanity checks and Table 1 reporting).
  virtual double mean() const = 0;
  virtual std::string describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

class ConstantDist final : public Distribution {
 public:
  explicit ConstantDist(double value);
  double sample(RandomStream&) const override { return value_; }
  double mean() const override { return value_; }
  std::string describe() const override;

 private:
  double value_;
};

class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi);
  double sample(RandomStream& rng) const override;
  double mean() const override { return (lo_ + hi_) / 2.0; }
  std::string describe() const override;

 private:
  double lo_, hi_;
};

class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double mean);
  double sample(RandomStream& rng) const override;
  double mean() const override { return mean_; }
  std::string describe() const override;

 private:
  double mean_;
};

class WeibullDist final : public Distribution {
 public:
  WeibullDist(double shape, double scale);
  double sample(RandomStream& rng) const override;
  double mean() const override;  // scale * Gamma(1 + 1/shape)
  std::string describe() const override;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

  /// Scale such that a Weibull with `shape` has the requested mean.
  static double scale_for_mean(double shape, double mean);

 private:
  double shape_, scale_;
};

class ParetoDist final : public Distribution {
 public:
  ParetoDist(double shape, double minimum);
  double sample(RandomStream& rng) const override;
  double mean() const override;  // infinite for shape <= 1
  std::string describe() const override;

 private:
  double shape_, minimum_;
};

class LogNormalDist final : public Distribution {
 public:
  LogNormalDist(double mu, double sigma);
  double sample(RandomStream& rng) const override;
  double mean() const override;
  std::string describe() const override;

  /// Parameterize from a desired (mean, median) pair, both > 0, mean>median.
  static LogNormalDist from_mean_median(double mean, double median);

 private:
  double mu_, sigma_;
};

class EmpiricalDist final : public Distribution {
 public:
  explicit EmpiricalDist(std::vector<double> values);
  double sample(RandomStream& rng) const override;
  double mean() const override;
  std::string describe() const override;

 private:
  std::vector<double> values_;
};

/// The paper's file size model: Weibull(0.35, 10039), mean ~50 KB.
DistributionPtr paper_file_sizes();

}  // namespace qoesim::trafficgen
