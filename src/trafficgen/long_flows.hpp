// qoesim -- long-lived ("infinite") TCP flows.
//
// The paper's "long" scenarios use flows of infinite duration whose link
// utilization is almost independent of the flow count. Senders keep their
// socket buffers topped up so the flows are persistently backlogged
// (greedy), like iperf/netperf sessions on the testbed hosts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_server.hpp"
#include "tcp/tcp_socket.hpp"

namespace qoesim::trafficgen {

struct LongFlowConfig {
  std::size_t flows = 1;
  tcp::TcpConfig tcp;
  std::uint32_t sink_port = 9100;
  /// Connections start uniformly spread over this window to avoid
  /// synchronized slow starts.
  Time start_window = Time::seconds(1);
  /// Sender refill granularity.
  std::uint64_t chunk_bytes = 256 * 1024;
  Time refill_interval = Time::milliseconds(100);
};

class LongFlowGenerator {
 public:
  LongFlowGenerator(Simulation& sim, std::vector<net::Node*> sources,
                    std::vector<net::Node*> sinks, LongFlowConfig config,
                    RandomStream rng);

  LongFlowGenerator(const LongFlowGenerator&) = delete;
  LongFlowGenerator& operator=(const LongFlowGenerator&) = delete;

  void start();

  std::size_t flow_count() const { return flows_.size(); }
  const tcp::TcpSocket& flow(std::size_t i) const { return *flows_.at(i); }
  std::uint64_t total_bytes_acked() const;

 private:
  void refill();

  Simulation& sim_;
  std::vector<net::Node*> sources_;
  std::vector<net::Node*> sinks_;
  LongFlowConfig config_;
  RandomStream rng_;

  std::vector<std::unique_ptr<tcp::TcpServer>> acceptors_;
  std::vector<std::shared_ptr<tcp::TcpSocket>> flows_;
};

}  // namespace qoesim::trafficgen
